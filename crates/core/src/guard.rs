//! Pipeline guardrails: typed errors, per-procedure recovery, and graceful
//! degradation.
//!
//! The formation + compaction pipeline rewrites programs aggressively (tail
//! duplication, enlargement, renaming, speculation). A bug anywhere in that
//! chain used to abort the whole experiment with a panic — or worse, ship a
//! miscompiled program into the timing simulation, silently corrupting the
//! paper's numbers. This module makes the pipeline *fail safe* instead:
//!
//! - every failure class has a typed [`PipelineError`];
//! - [`guarded_form_and_compact`] processes one procedure at a time inside a
//!   recovery boundary: panics are caught, the structural verifier and a
//!   seeded differential-interpretation oracle check the result, and on any
//!   failure the procedure is rolled back to its pre-pass state;
//! - in [`GuardMode::Degrade`] a failed procedure falls back to the
//!   basic-block (singleton superblock) baseline and the run continues,
//!   with a structured [`Incident`] recorded; in [`GuardMode::Strict`] the
//!   first failure is returned as a hard `Err` — the right setting for CI
//!   and for producing paper tables, where silent degradation would skew
//!   comparisons.
//!
//! The oracle compares observable behaviour (output stream, return value,
//! final memory) of the original and transformed program on configurable
//! inputs under an instruction budget, using [`Interp::run_bounded`] so
//! long-running programs are compared on output *prefixes* instead of being
//! misreported as failures. A transformed procedure that blows through a
//! generous multiple of the original's budget is reported as
//! [`PipelineError::StepBudgetExceeded`] — the symptom of a miscompiled
//! loop exit.
//!
//! The companion fault-injection harness (`pps_ir::fault`) corrupts
//! post-pass IR the way a buggy pass would; `tests/guardrails.rs` drives
//! hundreds of generated programs through this guard with injected faults
//! to prove every one is caught here and degraded away.

use crate::config::{FormConfig, Scheme};
use crate::pipeline::{form_proc_partition_obs, FormStats};
use pps_compact::{
    try_compact_proc_obs, CompactConfig, CompactError, CompactedProc, CompactedProgram,
    SuperblockSpec,
};
use pps_ir::analysis::Cfg;
use pps_ir::interp::{BoundedRun, ExecConfig, ExecError};
use pps_ir::verify::{verify_program, VerifyError};
use pps_ir::{AnalysisCache, Exec, ProcId, Program};
use pps_obs::{ArgValue, Level, Obs};
use pps_profile::{EdgeProfile, PathProfile};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Any failure the scheduling pipeline can produce, by pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A path-based scheme was requested without a path profile.
    MissingPathProfile {
        /// Name of the scheme that needed the profile.
        scheme: String,
    },
    /// Superblock formation panicked (caught at the recovery boundary).
    Formation {
        /// Procedure being formed.
        proc: String,
        /// Panic payload rendered to text.
        message: String,
    },
    /// Compaction rejected its input or its own output.
    Compaction(CompactError),
    /// The structural verifier rejected the transformed program.
    Verification(VerifyError),
    /// The transformed program's observable behaviour diverged from the
    /// original's on an oracle input.
    Divergence {
        /// Procedure whose transformation introduced the divergence.
        proc: String,
        /// Index into the oracle input list.
        input_index: usize,
        /// What differed (output / return value / memory).
        detail: String,
    },
    /// The transformed program failed to finish within `budget_factor`
    /// times the original's instruction budget — a miscompiled loop exit
    /// until proven otherwise.
    StepBudgetExceeded {
        /// Procedure whose transformation blew the budget.
        proc: String,
        /// Index into the oracle input list.
        input_index: usize,
    },
    /// The transformed program hit a runtime error the original did not.
    Execution {
        /// Procedure whose transformation introduced the error.
        proc: String,
        /// Index into the oracle input list.
        input_index: usize,
        /// The interpreter error.
        error: ExecError,
    },
}

impl PipelineError {
    /// Stable short tag for the failure class — the `kind` label of the
    /// `guard.incidents` metric and of `incident` trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            PipelineError::MissingPathProfile { .. } => "missing_path_profile",
            PipelineError::Formation { .. } => "formation_panic",
            PipelineError::Compaction(_) => "compaction",
            PipelineError::Verification(_) => "verification",
            PipelineError::Divergence { .. } => "divergence",
            PipelineError::StepBudgetExceeded { .. } => "step_budget_exceeded",
            PipelineError::Execution { .. } => "execution",
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MissingPathProfile { scheme } => {
                write!(f, "scheme {scheme} needs a path profile")
            }
            PipelineError::Formation { proc, message } => {
                write!(f, "formation panicked in {proc}: {message}")
            }
            PipelineError::Compaction(e) => write!(f, "compaction: {e}"),
            PipelineError::Verification(e) => write!(f, "verification: {e}"),
            PipelineError::Divergence { proc, input_index, detail } => {
                write!(f, "divergence after scheduling {proc} on input #{input_index}: {detail}")
            }
            PipelineError::StepBudgetExceeded { proc, input_index } => {
                write!(f, "step budget exceeded after scheduling {proc} on input #{input_index}")
            }
            PipelineError::Execution { proc, input_index, error } => {
                write!(
                    f,
                    "execution error after scheduling {proc} on input #{input_index}: {error}"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Compaction(e) => Some(e),
            PipelineError::Verification(e) => Some(e),
            PipelineError::Execution { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<CompactError> for PipelineError {
    fn from(e: CompactError) -> Self {
        PipelineError::Compaction(e)
    }
}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verification(e)
    }
}

/// What to do when a procedure fails its post-pass checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// Fail fast: the first incident aborts the run with a hard `Err`.
    /// Right for CI and for producing paper tables, where a silently
    /// degraded procedure would skew scheme comparisons.
    Strict,
    /// Roll the procedure back to its original (unscheduled) form, record
    /// an [`Incident`], and continue — the production default.
    #[default]
    Degrade,
}

impl fmt::Display for GuardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardMode::Strict => f.write_str("strict"),
            GuardMode::Degrade => f.write_str("degrade"),
        }
    }
}

/// Configuration of the recovery boundary.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Strict (fail-fast) or degrade (fallback-and-continue).
    pub mode: GuardMode,
    /// Inputs for the differential oracle. Empty disables the oracle;
    /// verification and panic recovery still apply.
    pub oracle_inputs: Vec<Vec<i64>>,
    /// Instruction budget for the *original* program's oracle runs. Runs
    /// that exceed it are compared on output prefixes.
    pub step_budget: u64,
    /// The transformed program may use `budget_factor * step_budget`
    /// instructions before [`PipelineError::StepBudgetExceeded`] is raised
    /// (scheduling never changes dynamic instruction counts by much; the
    /// slack only needs to absorb compensation code).
    pub budget_factor: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            mode: GuardMode::Degrade,
            oracle_inputs: Vec::new(),
            step_budget: 1_000_000,
            budget_factor: 8,
        }
    }
}

/// Which pass an incident was detected in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Superblock formation (selection, tail duplication, enlargement,
    /// fixup).
    Formation,
    /// Renaming + scheduling.
    Compaction,
    /// Post-pass structural verification.
    Verification,
    /// Post-pass differential interpretation.
    Oracle,
}

impl Pass {
    /// Stable short name — the `pass` label of the `guard.incidents` metric.
    pub fn name(&self) -> &'static str {
        match self {
            Pass::Formation => "formation",
            Pass::Compaction => "compaction",
            Pass::Verification => "verification",
            Pass::Oracle => "oracle",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recovered (or, in strict mode, fatal) pipeline failure.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Procedure the failure occurred in.
    pub proc: String,
    /// Pass that detected it.
    pub pass: Pass,
    /// The typed failure.
    pub error: PipelineError,
    /// True when the procedure was rolled back to the basic-block baseline
    /// and the run continued.
    pub fallback: bool,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}{}",
            self.pass,
            self.proc,
            self.error,
            if self.fallback { " (degraded to basic-block baseline)" } else { "" }
        )
    }
}

/// Summary of a guarded pipeline run.
#[derive(Debug, Clone, Default)]
pub struct GuardReport {
    /// Every failure encountered, in procedure order.
    pub incidents: Vec<Incident>,
    /// Procedures degraded to the basic-block baseline.
    pub degraded_procs: usize,
    /// Total procedures processed.
    pub total_procs: usize,
}

impl GuardReport {
    /// True when every procedure was scheduled as requested.
    pub fn clean(&self) -> bool {
        self.incidents.is_empty()
    }
}

/// The output of [`guarded_form_and_compact`].
#[derive(Debug, Clone)]
pub struct GuardedResult {
    /// Per-procedure schedules (degraded procedures carry their baseline
    /// singleton schedules).
    pub compacted: CompactedProgram,
    /// The final superblock partition per procedure.
    pub partition: Vec<Vec<SuperblockSpec>>,
    /// Formation statistics (contributions of degraded procedures rolled
    /// back).
    pub stats: FormStats,
    /// What happened.
    pub report: GuardReport,
}

/// Forms and compacts `program` with per-procedure recovery.
///
/// Procedures are processed in order. For each one, formation + compaction
/// run inside `catch_unwind`; afterwards the structural verifier and (when
/// `guard.oracle_inputs` is non-empty) the differential oracle check the
/// whole transformed program. On failure the procedure is restored from a
/// snapshot and — in degrade mode — re-compacted as basic-block singletons,
/// so the returned schedules always cover every procedure.
///
/// When nothing fails this computes exactly what
/// [`crate::pipeline::form_and_compact`] computes (same per-procedure
/// iteration order, same results).
///
/// # Errors
/// In strict mode, the first incident is returned as its underlying
/// [`PipelineError`]. In degrade mode an error is returned only when the
/// scheme needed a missing path profile, or when even the basic-block
/// fallback of a procedure failed (which indicates corruption outside the
/// pipeline's control).
pub fn guarded_form_and_compact(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    guard: &GuardConfig,
) -> Result<GuardedResult, PipelineError> {
    guarded_form_and_compact_obs(
        program,
        edge,
        path,
        scheme,
        form_config,
        compact_config,
        guard,
        &Obs::noop(),
    )
}

/// [`guarded_form_and_compact`] with observability: per-procedure
/// `schedule-proc` spans (with `form` / `compact` / `guard-verify` /
/// `oracle` children), `guard.incidents` counters labeled by failure kind
/// and pass, `guard.degraded_procs`, and one `incident` trace event plus a
/// warning log line per recovered failure.
///
/// # Errors
/// As [`guarded_form_and_compact`].
#[allow(clippy::too_many_arguments)]
pub fn guarded_form_and_compact_obs(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    guard: &GuardConfig,
    obs: &Obs,
) -> Result<GuardedResult, PipelineError> {
    guarded_impl(
        program,
        edge,
        path,
        scheme,
        form_config,
        compact_config,
        guard,
        obs,
        &mut |_, _| {},
    )
}

/// [`guarded_form_and_compact`] with a post-pass hook.
///
/// `post_pass` runs after each procedure's formation + compaction, *before*
/// verification and the oracle — the seam the fault-injection harness uses
/// to emulate a buggy pass (`pps_ir::fault::FaultInjector` corrupting the
/// just-scheduled procedure). The hook must only mutate procedure `pid`:
/// the recovery boundary snapshots and restores exactly that procedure.
///
/// # Errors
/// As [`guarded_form_and_compact`].
#[allow(clippy::too_many_arguments)]
pub fn guarded_form_and_compact_hooked(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    guard: &GuardConfig,
    post_pass: &mut dyn FnMut(&mut Program, ProcId),
) -> Result<GuardedResult, PipelineError> {
    guarded_impl(
        program,
        edge,
        path,
        scheme,
        form_config,
        compact_config,
        guard,
        &Obs::noop(),
        post_pass,
    )
}

/// [`guarded_form_and_compact_hooked`] with observability (see
/// [`guarded_form_and_compact_obs`]) — the fault-injection seam and the
/// recording sinks together, used to test that injected faults surface as
/// `guard.incidents` metrics and `incident` trace events.
///
/// # Errors
/// As [`guarded_form_and_compact`].
#[allow(clippy::too_many_arguments)]
pub fn guarded_form_and_compact_hooked_obs(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    guard: &GuardConfig,
    obs: &Obs,
    post_pass: &mut dyn FnMut(&mut Program, ProcId),
) -> Result<GuardedResult, PipelineError> {
    guarded_impl(
        program, edge, path, scheme, form_config, compact_config, guard, obs, post_pass,
    )
}

#[allow(clippy::too_many_arguments)]
fn guarded_impl(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    guard: &GuardConfig,
    obs: &Obs,
    post_pass: &mut dyn FnMut(&mut Program, ProcId),
) -> Result<GuardedResult, PipelineError> {
    if scheme.needs_path_profile() && path.is_none() {
        return Err(PipelineError::MissingPathProfile { scheme: scheme.name() });
    }

    // Ground truth for the oracle: the untransformed program's behaviour.
    let baseline_config = ExecConfig {
        max_instrs: guard.step_budget,
        ..ExecConfig::default()
    };
    let baselines: Vec<Result<BoundedRun, ExecError>> = {
        let _span = obs.span("oracle-baseline").arg("inputs", guard.oracle_inputs.len());
        let exec = Exec::new(program, baseline_config);
        guard
            .oracle_inputs
            .iter()
            .map(|args| exec.run_bounded(args))
            .collect()
    };

    // Decoded-stream cache for the per-procedure oracle runs below: after
    // each attempt only procedure `pid` has a new generation, so only it
    // re-decodes.
    let mut oracle_cache = AnalysisCache::new();

    let mut stats = FormStats {
        static_before: program.static_size() as u64,
        ..FormStats::default()
    };
    // `static_after` measures the *formed* program (pre-compaction stubs),
    // matching `form_program`; accumulated per procedure since formation and
    // compaction interleave here.
    let mut static_after: u64 = 0;
    let mut partition: Vec<Vec<SuperblockSpec>> = Vec::with_capacity(program.procs.len());
    let mut compacted: Vec<CompactedProc> = Vec::with_capacity(program.procs.len());
    let mut report = GuardReport {
        total_procs: program.procs.len(),
        ..GuardReport::default()
    };

    for pi in 0..program.procs.len() {
        let pid = ProcId::new(pi as u32);
        let proc_name = program.proc(pid).name.clone();
        let snapshot = program.proc(pid).clone();
        let stats_snapshot = stats;

        let proc_obs = obs.with_label("proc", proc_name.as_str());
        let proc_span = proc_obs.span("schedule-proc").arg("proc", proc_name.as_str());
        let attempt = attempt_proc(
            program, pid, edge, path, scheme, form_config, compact_config, guard, &baselines,
            &mut stats, post_pass, &mut oracle_cache, &proc_obs,
        );
        drop(proc_span);
        match attempt {
            Ok((specs, cp, formed_size)) => {
                static_after += formed_size;
                partition.push(specs);
                compacted.push(cp);
            }
            Err((pass, error)) => {
                // Roll back: only procedure `pid` was touched.
                *program.proc_mut(pid) = snapshot;
                stats = stats_snapshot;
                let fallback = guard.mode == GuardMode::Degrade;
                let incident = Incident {
                    proc: proc_name.clone(),
                    pass,
                    error: error.clone(),
                    fallback,
                };
                obs.counter_labeled(
                    "guard.incidents",
                    &[("kind", error.kind()), ("pass", pass.name())],
                    1,
                );
                obs.instant(
                    "guard",
                    "incident",
                    &[
                        ("proc", ArgValue::from(proc_name.as_str())),
                        ("pass", ArgValue::from(pass.name())),
                        ("kind", ArgValue::from(error.kind())),
                        ("error", ArgValue::from(error.to_string())),
                        ("fallback", ArgValue::from(fallback)),
                    ],
                );
                obs.log(Level::Warn, || format!("incident: {incident}"));
                report.incidents.push(incident);
                if !fallback {
                    return Err(error);
                }
                obs.counter("guard.degraded_procs", 1);
                // Degrade: schedule the pristine procedure as basic-block
                // singletons. This is the baseline path every scheme shares;
                // if even it fails, recovery is impossible.
                static_after += program.proc(pid).static_size() as u64;
                let specs = singleton_specs(program, pid);
                let cp = try_compact_proc_obs(program.proc_mut(pid), &specs, compact_config, &proc_obs)?;
                verify_program(program)?;
                report.degraded_procs += 1;
                partition.push(specs);
                compacted.push(cp);
            }
        }
    }

    stats.static_after = static_after;
    stats.superblocks = partition.iter().map(|p| p.len() as u64).sum();
    Ok(GuardedResult {
        compacted: CompactedProgram { procs: compacted },
        partition,
        stats,
        report,
    })
}

/// One procedure's form + compact + verify + oracle attempt. On `Err`, the
/// caller rolls the procedure back; the pass tag says where it failed.
#[allow(clippy::too_many_arguments)]
fn attempt_proc(
    program: &mut Program,
    pid: ProcId,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    guard: &GuardConfig,
    baselines: &[Result<BoundedRun, ExecError>],
    stats: &mut FormStats,
    post_pass: &mut dyn FnMut(&mut Program, ProcId),
    oracle_cache: &mut AnalysisCache,
    obs: &Obs,
) -> Result<(Vec<SuperblockSpec>, CompactedProc, u64), (Pass, PipelineError)> {
    let proc_name = program.proc(pid).name.clone();

    // Formation + compaction under a panic boundary. Everything these
    // passes mutate is the procedure itself (restored by the caller on
    // failure) and `stats` (snapshot-restored likewise), so unwinding here
    // cannot leave broken shared state behind.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (specs, _orig) =
            form_proc_partition_obs(program, pid, edge, path, scheme, form_config, stats, obs)
                .map_err(|e| (Pass::Formation, e))?;
        // Code-growth accounting happens on the formed procedure, before
        // compaction appends singleton stubs (same point `form_program`
        // measures `static_after`).
        let formed_size = program.proc(pid).static_size() as u64;
        let cp = try_compact_proc_obs(program.proc_mut(pid), &specs, compact_config, obs)
            .map_err(|e| (Pass::Compaction, PipelineError::Compaction(e)))?;
        Ok((specs, cp, formed_size))
    }));
    let (specs, cp, formed_size) = match outcome {
        Ok(result) => result?,
        Err(payload) => {
            return Err((
                Pass::Formation,
                PipelineError::Formation {
                    proc: proc_name,
                    message: panic_message(payload.as_ref()),
                },
            ));
        }
    };

    post_pass(program, pid);

    // Post-pass structural check over the whole program (procedures before
    // `pid` are already validated; later ones untouched — a failure here is
    // attributable to `pid`).
    let verify_span = obs.span("guard-verify");
    if let Err(e) = verify_program(program) {
        return Err((Pass::Verification, PipelineError::Verification(e)));
    }
    drop(verify_span);

    // Differential oracle: the transformed program must reproduce the
    // original's observable behaviour on every oracle input.
    let _oracle_span = obs.span("oracle").arg("inputs", baselines.len());
    let transformed_config = ExecConfig {
        max_instrs: guard.step_budget.saturating_mul(guard.budget_factor.max(1)),
        ..ExecConfig::default()
    };
    let oracle_exec = Exec::new_cached(program, transformed_config, oracle_cache);
    for (input_index, baseline) in baselines.iter().enumerate() {
        let run = oracle_exec.run_bounded(&guard.oracle_inputs[input_index]);
        if let Some(error) = oracle_check(&proc_name, input_index, baseline, &run) {
            return Err((Pass::Oracle, error));
        }
    }

    Ok((specs, cp, formed_size))
}

/// Compares one oracle input's baseline and transformed runs. `None` means
/// consistent.
fn oracle_check(
    proc: &str,
    input_index: usize,
    baseline: &Result<BoundedRun, ExecError>,
    run: &Result<BoundedRun, ExecError>,
) -> Option<PipelineError> {
    let divergence = |detail: String| {
        Some(PipelineError::Divergence {
            proc: proc.to_string(),
            input_index,
            detail,
        })
    };
    match (baseline, run) {
        (Ok(b), Ok(r)) => {
            if b.completed {
                if !r.completed {
                    // The original finished within the base budget; the
                    // transformed program got `budget_factor` times that
                    // and still didn't.
                    return Some(PipelineError::StepBudgetExceeded {
                        proc: proc.to_string(),
                        input_index,
                    });
                }
                if b.result.output != r.result.output {
                    return divergence("output streams differ".to_string());
                }
                if b.result.return_value != r.result.return_value {
                    return divergence(format!(
                        "return value {:?} != {:?}",
                        b.result.return_value, r.result.return_value
                    ));
                }
                if b.result.memory != r.result.memory {
                    return divergence("final memory images differ".to_string());
                }
                None
            } else {
                // Baseline truncated: the transformed run (complete or not)
                // must agree on the observable prefix.
                let n = b.result.output.len().min(r.result.output.len());
                if b.result.output[..n] != r.result.output[..n] {
                    return divergence("output prefixes differ".to_string());
                }
                if r.completed && r.result.output.len() < b.result.output.len() {
                    return divergence(
                        "transformed program finished with less output".to_string(),
                    );
                }
                None
            }
        }
        (Ok(_), Err(e)) => Some(PipelineError::Execution {
            proc: proc.to_string(),
            input_index,
            error: e.clone(),
        }),
        // The original program itself errors on this input: the
        // transformed program must reproduce the same error.
        (Err(be), Err(re)) if be == re => None,
        (Err(be), re) => divergence(format!("baseline error {be:?}, transformed {re:?}")),
    }
}

/// The basic-block baseline partition for one procedure.
fn singleton_specs(program: &Program, pid: ProcId) -> Vec<SuperblockSpec> {
    let proc = program.proc(pid);
    let cfg = Cfg::compute(proc);
    proc.block_ids()
        .filter(|b| cfg.is_reachable(*b))
        .map(SuperblockSpec::singleton)
        .collect()
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::Interp;
    use crate::pipeline::form_and_compact;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::fault::FaultInjector;
    use pps_ir::text::print_program;
    use pps_ir::{AluOp, Operand, Reg};
    use pps_profile::{EdgeProfiler, PathProfiler};

    /// Loop + diamond + call workload (mirrors the pipeline tests).
    fn workload() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.set_memory(1 << 12, (0..64).map(|x| (x * 7 + 3) % 13).collect());
        let helper = pb.declare_proc("mix", 2);
        let mut h = pb.begin_declared(helper);
        let a = Reg::new(0);
        let b = Reg::new(1);
        let r = h.reg();
        h.alu(AluOp::Xor, r, a, b);
        h.alu(AluOp::Mul, r, r, 31i64);
        h.ret(Some(Operand::Reg(r)));
        h.finish();

        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let acc = f.reg();
        let c = f.reg();
        let v = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        f.mov(acc, 0i64);
        let head = f.new_block();
        let odd = f.new_block();
        let even = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 64i64);
        f.load(v, m, 0);
        f.alu(AluOp::Rem, m, i, 3i64);
        f.branch(m, odd, even);
        f.switch_to(odd);
        f.alu(AluOp::Add, acc, acc, v);
        f.jump(latch);
        f.switch_to(even);
        let t = f.reg();
        f.call(helper, vec![Operand::Reg(acc), Operand::Reg(v)], Some(t));
        f.alu(AluOp::Add, acc, acc, t);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.out(acc);
        f.ret(Some(Operand::Reg(acc)));
        let main = f.finish();
        pb.finish(main)
    }

    fn profiles(p: &Program, arg: i64) -> (EdgeProfile, PathProfile) {
        let mut ep = EdgeProfiler::new(p);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[arg], &mut ep)
            .unwrap();
        let mut pp = PathProfiler::new(p, 15);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[arg], &mut pp)
            .unwrap();
        (ep.finish(), pp.finish())
    }

    fn test_guard(mode: GuardMode) -> GuardConfig {
        GuardConfig {
            mode,
            oracle_inputs: vec![vec![87], vec![13]],
            step_budget: 500_000,
            budget_factor: 8,
        }
    }

    #[test]
    fn clean_run_matches_unguarded_pipeline() {
        for scheme in [Scheme::BasicBlock, Scheme::M4, Scheme::P4, Scheme::P4E] {
            let base = workload();
            let (ep, pp) = profiles(&base, 150);

            let mut unguarded = base.clone();
            let (_, stats_u) = form_and_compact(
                &mut unguarded,
                &ep,
                Some(&pp),
                scheme,
                &FormConfig::default(),
                &CompactConfig::default(),
            )
            .unwrap();

            let mut guarded = base.clone();
            let result = guarded_form_and_compact(
                &mut guarded,
                &ep,
                Some(&pp),
                scheme,
                &FormConfig::default(),
                &CompactConfig::default(),
                &test_guard(GuardMode::Strict),
            )
            .unwrap();

            assert!(result.report.clean(), "{}: {:?}", scheme.name(), result.report);
            assert_eq!(result.report.degraded_procs, 0);
            assert_eq!(
                print_program(&unguarded),
                print_program(&guarded),
                "{}: guarded transform must be byte-identical",
                scheme.name()
            );
            assert_eq!(result.stats, stats_u, "{}", scheme.name());
        }
    }

    #[test]
    fn missing_path_profile_is_typed() {
        let mut p = workload();
        let (ep, _) = profiles(&p, 50);
        for mode in [GuardMode::Strict, GuardMode::Degrade] {
            let err = guarded_form_and_compact(
                &mut p.clone(),
                &ep,
                None,
                Scheme::P4,
                &FormConfig::default(),
                &CompactConfig::default(),
                &test_guard(mode),
            )
            .unwrap_err();
            assert!(matches!(err, PipelineError::MissingPathProfile { .. }), "{err}");
        }
        let err =
            crate::pipeline::form_program(&mut p, &ep, None, Scheme::P4, &FormConfig::default())
                .unwrap_err();
        assert!(matches!(err, PipelineError::MissingPathProfile { .. }));
    }

    #[test]
    fn injected_fault_degrades_and_preserves_semantics() {
        let base = workload();
        let (ep, pp) = profiles(&base, 150);
        let expected = Interp::new(&base, ExecConfig::default()).run(&[87]).unwrap();
        let inputs = vec![vec![87], vec![13]];

        let mut program = base.clone();
        let mut injector = FaultInjector::new(0xFA11);
        let mut injected = Vec::new();
        let result = guarded_form_and_compact_hooked(
            &mut program,
            &ep,
            Some(&pp),
            Scheme::P4,
            &FormConfig::default(),
            &CompactConfig::default(),
            &test_guard(GuardMode::Degrade),
            &mut |prog, pid| {
                if let Some(r) = injector.inject_effective(prog, pid, &inputs, 500_000, 32) {
                    injected.push(r);
                }
            },
        )
        .unwrap();

        assert!(!injected.is_empty(), "injector found no effective fault");
        assert_eq!(
            result.report.incidents.len(),
            injected.len(),
            "every effective fault must raise an incident: {:?}",
            result.report.incidents
        );
        assert_eq!(result.report.degraded_procs, injected.len());
        assert!(result.report.incidents.iter().all(|i| i.fallback));
        // The degraded program still computes the original's answer.
        verify_program(&program).unwrap();
        let got = Interp::new(&program, ExecConfig::default()).run(&[87]).unwrap();
        assert_eq!(expected.output, got.output);
        assert_eq!(expected.return_value, got.return_value);
        // Every procedure still has a schedule.
        assert_eq!(result.compacted.procs.len(), program.procs.len());
    }

    #[test]
    fn strict_mode_fails_fast_on_injected_fault() {
        let base = workload();
        let (ep, pp) = profiles(&base, 150);
        let inputs = vec![vec![87], vec![13]];
        let mut program = base.clone();
        let mut injector = FaultInjector::new(7);
        let err = guarded_form_and_compact_hooked(
            &mut program,
            &ep,
            Some(&pp),
            Scheme::M4,
            &FormConfig::default(),
            &CompactConfig::default(),
            &test_guard(GuardMode::Strict),
            &mut |prog, pid| {
                let _ = injector.inject_effective(prog, pid, &inputs, 500_000, 32);
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Verification(_)
                    | PipelineError::Divergence { .. }
                    | PipelineError::Execution { .. }
                    | PipelineError::StepBudgetExceeded { .. }
            ),
            "unexpected error class: {err}"
        );
    }

    #[test]
    fn oracle_prefix_logic_handles_truncation() {
        let mk = |completed, output: Vec<i64>| {
            Ok(BoundedRun {
                result: pps_ir::interp::ExecResult {
                    output,
                    return_value: None,
                    counts: Default::default(),
                    memory: Vec::new(),
                },
                completed,
            })
        };
        // Consistent prefixes: no error.
        assert!(oracle_check("p", 0, &mk(false, vec![1, 2]), &mk(false, vec![1, 2, 3])).is_none());
        // Prefix mismatch: divergence.
        assert!(matches!(
            oracle_check("p", 0, &mk(false, vec![1, 2]), &mk(true, vec![1, 9])),
            Some(PipelineError::Divergence { .. })
        ));
        // Transformed completes with *less* output than the baseline saw.
        assert!(matches!(
            oracle_check("p", 0, &mk(false, vec![1, 2, 3]), &mk(true, vec![1, 2])),
            Some(PipelineError::Divergence { .. })
        ));
        // Baseline completed, transformed truncated at 8x budget.
        assert!(matches!(
            oracle_check("p", 3, &mk(true, vec![1]), &mk(false, vec![1])),
            Some(PipelineError::StepBudgetExceeded { input_index: 3, .. })
        ));
    }
}
