#![warn(missing_docs)]

//! Superblock formation driven by edge or general-path profiles — the
//! central contribution of Young & Smith (MICRO-31, 1998).
//!
//! Formation has three steps (paper §2.1):
//!
//! 1. **Trace selection** partitions each procedure's blocks into traces:
//!    [`select::select_traces_edge`] implements the classical
//!    mutual-most-likely heuristic over edge profiles;
//!    [`select::select_traces_path`] implements the paper's path-based
//!    selector (Figure 2), which grows a seed downward by the
//!    *most-likely path successor* — the successor whose extension of the
//!    whole current trace has the highest exact path frequency.
//! 2. **Tail duplication** ([`tail_dup`]) removes side entrances by
//!    duplicating trace tails, turning traces into superblocks.
//! 3. **Enlargement** ([`enlarge`]) appends copies of likely successor
//!    blocks: the edge-based enlarger implements the classical trio (branch
//!    target expansion, loop peeling, loop unrolling); the path-based
//!    enlarger unifies all three into the single most-likely-path-successor
//!    mechanism of Figure 2, enlarging only superblocks whose exact
//!    completion frequency is high, and capturing cross-iteration branch
//!    correlation (Figure 3).
//!
//! [`pipeline`] packages formation + compaction behind one call, keyed by a
//! [`config::Scheme`] (`BasicBlock`, `M4`/`M16` edge schemes, `P4`/`P4e`
//! path schemes — the configurations of the paper's Figures 4–7).

pub mod config;
pub mod enlarge;
pub mod fixup;
pub mod guard;
pub mod hash;
pub mod inline;
pub mod pipeline;
pub mod pool;
pub mod select;
pub mod swap;
pub mod tail_dup;
pub mod unit;

pub use config::{FormConfig, Scheme};
pub use hash::{machine_hash, ArtifactKey};
pub use inline::{inline_hot_calls, InlineConfig, InlineOutcome, InlinedSite};
pub use guard::{
    guarded_form_and_compact, guarded_form_and_compact_hooked,
    guarded_form_and_compact_hooked_obs, guarded_form_and_compact_obs, GuardConfig, GuardMode,
    GuardReport, GuardedResult, Incident, Pass, PipelineError,
};
pub use pipeline::{
    form_and_compact, form_and_compact_obs, form_program, form_program_obs,
    form_program_parallel, form_unit, FormStats, FormedProgram,
};
pub use swap::{SwapOutcome, SwapSlot};
pub use unit::CompileUnit;
