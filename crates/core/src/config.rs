//! Formation configuration and the named schemes of the paper's evaluation.

/// A formation scheme, matching the configurations compared in Figures 4–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No formation: every basic block is its own superblock (the Table 1
    /// baseline).
    BasicBlock,
    /// Edge-profile formation: mutual-most-likely selection + classical
    /// enlargement (branch target expansion, loop peeling, loop unrolling)
    /// with the given unroll factor. `M4` and `M16` in the paper.
    Edge {
        /// Unroll factor (4 or 16 in the paper).
        unroll: u32,
    },
    /// Path-profile formation: most-likely-path-successor selection +
    /// unified path-based enlargement with the given superblock-loop-head
    /// budget. `restrained` selects the paper's "P4e" variant, which stops
    /// enlarging non-loop superblocks at the first superblock head to limit
    /// code expansion.
    Path {
        /// Superblock-loop-head budget (4 in the paper's P4/P4e).
        unroll: u32,
        /// True for the P4e variant.
        restrained: bool,
    },
    /// k-iteration Ball–Larus path formation (`Pk2`/`Pk3`): formation runs
    /// the path-based selector and enlarger over a profile derived from
    /// k-iteration chopped paths (arXiv:1304.5197). Cross-iteration
    /// extensions are supported only where a recorded k-iteration span
    /// witnessed them, so unroll-and-form follows the dominant k-iteration
    /// path of hot self-loops and stops at the profile's fidelity horizon.
    KPath {
        /// Back-edge crossings per profiled path (2 or 3 here).
        k: u32,
        /// Superblock-loop-head budget (as in P4).
        unroll: u32,
    },
    /// Interprocedural path formation (`Px4`): the hot callees along
    /// dominant paths are inlined first (behind the strict guard with
    /// per-caller rollback), profiles are re-trained on the inlined
    /// program, and path-based formation then runs *through* the former
    /// call sites with the given superblock-loop-head budget.
    Inter {
        /// Superblock-loop-head budget (as in P4).
        unroll: u32,
    },
}

impl Scheme {
    /// The paper's `M4` baseline scheme.
    pub const M4: Scheme = Scheme::Edge { unroll: 4 };
    /// The paper's `M16` aggressive-unrolling scheme.
    pub const M16: Scheme = Scheme::Edge { unroll: 16 };
    /// The paper's `P4` scheme.
    pub const P4: Scheme = Scheme::Path { unroll: 4, restrained: false };
    /// The paper's `P4e` scheme.
    pub const P4E: Scheme = Scheme::Path { unroll: 4, restrained: true };
    /// The 2-iteration Ball–Larus scheme.
    pub const PK2: Scheme = Scheme::KPath { k: 2, unroll: 4 };
    /// The 3-iteration Ball–Larus scheme.
    pub const PK3: Scheme = Scheme::KPath { k: 3, unroll: 4 };
    /// The interprocedural (inline-then-form) scheme.
    pub const PX4: Scheme = Scheme::Inter { unroll: 4 };

    /// Every named scheme of the extended family, in figure order. The
    /// scheme-name round-trip test enumerates this.
    pub const FAMILY: [Scheme; 8] = [
        Scheme::BasicBlock,
        Scheme::M4,
        Scheme::M16,
        Scheme::P4,
        Scheme::P4E,
        Scheme::PK2,
        Scheme::PK3,
        Scheme::PX4,
    ];

    /// Short display name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::BasicBlock => "BB".to_string(),
            Scheme::Edge { unroll } => format!("M{unroll}"),
            Scheme::Path { unroll, restrained: false } => format!("P{unroll}"),
            Scheme::Path { unroll, restrained: true } => format!("P{unroll}e"),
            Scheme::KPath { k, .. } => format!("Pk{k}"),
            Scheme::Inter { unroll } => format!("Px{unroll}"),
        }
    }

    /// Parses a scheme name, accepting any capitalization (`pk2`, `PK2` and
    /// `Pk2` are the same scheme). [`Scheme::name`] is the canonical
    /// spelling: every consumer that keys on scheme identity (reply cache,
    /// shard router, `ArtifactKey`) must go through `parse(..).name()` so
    /// spelling variants cannot split cache entries or route apart.
    pub fn parse(name: &str) -> Option<Scheme> {
        let up = name.to_ascii_uppercase();
        if up == "BB" {
            return Some(Scheme::BasicBlock);
        }
        if let Some(n) = up.strip_prefix("PK") {
            let k: u32 = n.parse().ok()?;
            return (2..=3).contains(&k).then_some(Scheme::KPath { k, unroll: 4 });
        }
        if let Some(n) = up.strip_prefix("PX") {
            let unroll: u32 = n.parse().ok()?;
            return (unroll == 4).then_some(Scheme::Inter { unroll });
        }
        if let Some(n) = up.strip_prefix('M') {
            let unroll: u32 = n.parse().ok()?;
            return (unroll >= 1).then_some(Scheme::Edge { unroll });
        }
        if let Some(n) = up.strip_prefix('P') {
            let (n, restrained) = match n.strip_suffix('E') {
                Some(n) => (n, true),
                None => (n, false),
            };
            let unroll: u32 = n.parse().ok()?;
            return (unroll >= 1).then_some(Scheme::Path { unroll, restrained });
        }
        None
    }

    /// True when this scheme consumes a path profile (for the `Pk*` and
    /// `Px*` schemes, one derived from the k-iteration / post-inline
    /// training run).
    pub fn needs_path_profile(&self) -> bool {
        matches!(self, Scheme::Path { .. } | Scheme::KPath { .. } | Scheme::Inter { .. })
    }

    /// The k-iteration bound of a `Pk*` scheme, if any.
    pub fn kpath_k(&self) -> Option<u32> {
        match self {
            Scheme::KPath { k, .. } => Some(*k),
            _ => None,
        }
    }
}

/// Tunable parameters of formation (paper defaults; see DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormConfig {
    /// Minimum fraction of the hottest block's frequency for a block to
    /// seed a trace; colder blocks become singleton superblocks.
    pub seed_fraction: f64,
    /// Fraction of a superblock's head frequency with which it must
    /// complete for path-based enlargement to proceed ("user-specified high
    /// frequency"). The default admits dominant paths with a 2:1 internal
    /// split (e.g. the 75%-taken TTTF pattern of `alt`, or phased loops at
    /// 50%), which the paper's Figure 3 requires to enlarge; traces that
    /// mostly early-exit stay blocked.
    pub completion_threshold: f64,
    /// Maximum instructions per superblock after enlargement.
    pub max_superblock_instrs: usize,
    /// Edge probability for "likely" in the edge-based enlarger (branch
    /// target expansion, superblock-loop classification).
    pub likely_threshold: f64,
    /// Average trip count at or above which the edge-based enlarger unrolls
    /// rather than peels.
    pub peel_max_avg: f64,
    /// Grow path-selected traces upward (toward predecessors) as well as
    /// downward. The paper's implementation grows downward only; footnote 2
    /// predicts upward growth "will not noticeably improve the performance
    /// of our scheduled code" — this switch exists to test that prediction
    /// (see the `ablate` experiment).
    pub upward_growth: bool,
    /// Enable tail duplication (disabling leaves traces as single-block
    /// superblocks where side entrances exist; ablation only).
    pub tail_duplication: bool,
    /// Enable enlargement (ablation switch).
    pub enlargement: bool,
}

impl Default for FormConfig {
    fn default() -> Self {
        FormConfig {
            seed_fraction: 0.001,
            completion_threshold: 0.45,
            max_superblock_instrs: 512,
            likely_threshold: 0.70,
            peel_max_avg: 8.0,
            upward_growth: false,
            tail_duplication: true,
            enlargement: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(Scheme::BasicBlock.name(), "BB");
        assert_eq!(Scheme::M4.name(), "M4");
        assert_eq!(Scheme::M16.name(), "M16");
        assert_eq!(Scheme::P4.name(), "P4");
        assert_eq!(Scheme::P4E.name(), "P4e");
        assert_eq!(Scheme::PK2.name(), "Pk2");
        assert_eq!(Scheme::PK3.name(), "Pk3");
        assert_eq!(Scheme::PX4.name(), "Px4");
    }

    /// The whole scheme family round-trips through its canonical name in
    /// any capitalization, and canonical names are pairwise distinct — the
    /// property that keeps cache keys and shard routing collision-free.
    #[test]
    fn scheme_family_round_trips_canonically() {
        let mut seen = std::collections::HashSet::new();
        for scheme in Scheme::FAMILY {
            let name = scheme.name();
            assert!(seen.insert(name.clone()), "duplicate canonical name {name}");
            assert_eq!(Scheme::parse(&name), Some(scheme), "{name}");
            assert_eq!(Scheme::parse(&name.to_ascii_uppercase()), Some(scheme), "{name}");
            assert_eq!(Scheme::parse(&name.to_ascii_lowercase()), Some(scheme), "{name}");
            // parse().name() is idempotent: every spelling canonicalizes to
            // one string.
            assert_eq!(Scheme::parse(&name.to_ascii_uppercase()).unwrap().name(), name);
        }
        for bogus in ["", "B", "Q4", "Pk", "Pk1", "Pk4", "Px2", "M", "P", "P4x", "4"] {
            assert_eq!(Scheme::parse(bogus), None, "{bogus:?} must not parse");
        }
    }

    #[test]
    fn path_schemes_need_path_profiles() {
        assert!(Scheme::P4.needs_path_profile());
        assert!(Scheme::P4E.needs_path_profile());
        assert!(Scheme::PK2.needs_path_profile());
        assert!(Scheme::PK3.needs_path_profile());
        assert!(Scheme::PX4.needs_path_profile());
        assert!(!Scheme::M4.needs_path_profile());
        assert!(!Scheme::BasicBlock.needs_path_profile());
        assert_eq!(Scheme::PK2.kpath_k(), Some(2));
        assert_eq!(Scheme::PX4.kpath_k(), None);
    }

    #[test]
    fn defaults_are_sane() {
        let c = FormConfig::default();
        assert!(c.completion_threshold > 0.0 && c.completion_threshold <= 1.0);
        assert!(c.max_superblock_instrs >= 64);
        assert!(c.tail_duplication && c.enlargement);
    }
}
