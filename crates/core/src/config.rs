//! Formation configuration and the named schemes of the paper's evaluation.

/// A formation scheme, matching the configurations compared in Figures 4–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No formation: every basic block is its own superblock (the Table 1
    /// baseline).
    BasicBlock,
    /// Edge-profile formation: mutual-most-likely selection + classical
    /// enlargement (branch target expansion, loop peeling, loop unrolling)
    /// with the given unroll factor. `M4` and `M16` in the paper.
    Edge {
        /// Unroll factor (4 or 16 in the paper).
        unroll: u32,
    },
    /// Path-profile formation: most-likely-path-successor selection +
    /// unified path-based enlargement with the given superblock-loop-head
    /// budget. `restrained` selects the paper's "P4e" variant, which stops
    /// enlarging non-loop superblocks at the first superblock head to limit
    /// code expansion.
    Path {
        /// Superblock-loop-head budget (4 in the paper's P4/P4e).
        unroll: u32,
        /// True for the P4e variant.
        restrained: bool,
    },
}

impl Scheme {
    /// The paper's `M4` baseline scheme.
    pub const M4: Scheme = Scheme::Edge { unroll: 4 };
    /// The paper's `M16` aggressive-unrolling scheme.
    pub const M16: Scheme = Scheme::Edge { unroll: 16 };
    /// The paper's `P4` scheme.
    pub const P4: Scheme = Scheme::Path { unroll: 4, restrained: false };
    /// The paper's `P4e` scheme.
    pub const P4E: Scheme = Scheme::Path { unroll: 4, restrained: true };

    /// Short display name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::BasicBlock => "BB".to_string(),
            Scheme::Edge { unroll } => format!("M{unroll}"),
            Scheme::Path { unroll, restrained: false } => format!("P{unroll}"),
            Scheme::Path { unroll, restrained: true } => format!("P{unroll}e"),
        }
    }

    /// True when this scheme consumes a path profile.
    pub fn needs_path_profile(&self) -> bool {
        matches!(self, Scheme::Path { .. })
    }
}

/// Tunable parameters of formation (paper defaults; see DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormConfig {
    /// Minimum fraction of the hottest block's frequency for a block to
    /// seed a trace; colder blocks become singleton superblocks.
    pub seed_fraction: f64,
    /// Fraction of a superblock's head frequency with which it must
    /// complete for path-based enlargement to proceed ("user-specified high
    /// frequency"). The default admits dominant paths with a 2:1 internal
    /// split (e.g. the 75%-taken TTTF pattern of `alt`, or phased loops at
    /// 50%), which the paper's Figure 3 requires to enlarge; traces that
    /// mostly early-exit stay blocked.
    pub completion_threshold: f64,
    /// Maximum instructions per superblock after enlargement.
    pub max_superblock_instrs: usize,
    /// Edge probability for "likely" in the edge-based enlarger (branch
    /// target expansion, superblock-loop classification).
    pub likely_threshold: f64,
    /// Average trip count at or above which the edge-based enlarger unrolls
    /// rather than peels.
    pub peel_max_avg: f64,
    /// Grow path-selected traces upward (toward predecessors) as well as
    /// downward. The paper's implementation grows downward only; footnote 2
    /// predicts upward growth "will not noticeably improve the performance
    /// of our scheduled code" — this switch exists to test that prediction
    /// (see the `ablate` experiment).
    pub upward_growth: bool,
    /// Enable tail duplication (disabling leaves traces as single-block
    /// superblocks where side entrances exist; ablation only).
    pub tail_duplication: bool,
    /// Enable enlargement (ablation switch).
    pub enlargement: bool,
}

impl Default for FormConfig {
    fn default() -> Self {
        FormConfig {
            seed_fraction: 0.001,
            completion_threshold: 0.45,
            max_superblock_instrs: 512,
            likely_threshold: 0.70,
            peel_max_avg: 8.0,
            upward_growth: false,
            tail_duplication: true,
            enlargement: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(Scheme::BasicBlock.name(), "BB");
        assert_eq!(Scheme::M4.name(), "M4");
        assert_eq!(Scheme::M16.name(), "M16");
        assert_eq!(Scheme::P4.name(), "P4");
        assert_eq!(Scheme::P4E.name(), "P4e");
    }

    #[test]
    fn path_schemes_need_path_profiles() {
        assert!(Scheme::P4.needs_path_profile());
        assert!(Scheme::P4E.needs_path_profile());
        assert!(!Scheme::M4.needs_path_profile());
        assert!(!Scheme::BasicBlock.needs_path_profile());
    }

    #[test]
    fn defaults_are_sane() {
        let c = FormConfig::default();
        assert!(c.completion_threshold > 0.0 && c.completion_threshold <= 1.0);
        assert!(c.max_superblock_instrs >= 64);
        assert!(c.tail_duplication && c.enlargement);
    }
}
