//! Partition fixup: splitting superblocks at residual side entrances.
//!
//! Enlargement can stop mid-walk (size cap, exhausted frequency), leaving
//! the last appended copy's off-trace edge pointing into the *interior* of
//! another superblock — a side entrance. Rather than forbid such stops,
//! formation runs this fixup pass: any superblock position with a
//! predecessor other than its in-superblock predecessor becomes the head of
//! a new superblock. Splitting never changes the CFG, only the partition,
//! so one pass suffices.

use crate::enlarge::SbBuild;
use pps_ir::analysis::Cfg;

/// Provenance of one superblock after splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// Index of the input superblock this piece came from.
    pub origin: usize,
    /// True for non-leading pieces of a split — fresh heads that a further
    /// enlargement pass may grow.
    pub fragment: bool,
}

/// Splits superblocks at side-entered positions. `cfg` must describe the
/// procedure's current body (callers pass their cached CFG down rather
/// than this pass recomputing one). Returns the number of splits performed
/// and per-output-superblock provenance.
pub fn split_side_entrances(cfg: &Cfg, sbs: &mut Vec<SbBuild>) -> (usize, Vec<Piece>) {
    let mut result: Vec<SbBuild> = Vec::with_capacity(sbs.len());
    let mut pieces: Vec<Piece> = Vec::with_capacity(sbs.len());
    let mut splits = 0;
    for (origin, sb) in sbs.drain(..).enumerate() {
        let mut first_piece = true;
        let mut cur_blocks = vec![sb.blocks[0]];
        let mut cur_orig = vec![sb.orig[0]];
        for i in 1..sb.blocks.len() {
            let b = sb.blocks[i];
            let prev = sb.blocks[i - 1];
            let side_entered = cfg.preds[b.index()].iter().any(|&p| p != prev);
            if side_entered {
                splits += 1;
                result.push(SbBuild { blocks: std::mem::take(&mut cur_blocks), orig: std::mem::take(&mut cur_orig) });
                pieces.push(Piece { origin, fragment: !first_piece });
                first_piece = false;
            }
            cur_blocks.push(b);
            cur_orig.push(sb.orig[i]);
        }
        result.push(SbBuild { blocks: cur_blocks, orig: cur_orig });
        pieces.push(Piece { origin, fragment: !first_piece });
    }
    *sbs = result;
    (splits, pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{BlockId, Reg};

    #[test]
    fn splits_at_side_entrance() {
        // entry -> (a | b); a -> join; b -> join; join -> ret.
        // Partition [entry, a, join] has a side entrance at join.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        let join = f.new_block();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.jump(join);
        f.switch_to(b);
        f.jump(join);
        f.switch_to(join);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let cfg = Cfg::compute(p.proc(p.entry));
        let mut sbs = vec![
            SbBuild::from_original(vec![BlockId::new(0), a, join]),
            SbBuild::from_original(vec![b]),
        ];
        let (n, pieces) = split_side_entrances(&cfg, &mut sbs);
        assert_eq!(n, 1);
        assert_eq!(sbs.len(), 3);
        assert_eq!(sbs[0].blocks, vec![BlockId::new(0), a]);
        assert_eq!(sbs[1].blocks, vec![join]);
        assert_eq!(sbs[2].blocks, vec![b]);
        assert_eq!(
            pieces,
            vec![
                Piece { origin: 0, fragment: false },
                Piece { origin: 0, fragment: true },
                Piece { origin: 1, fragment: false },
            ]
        );
    }

    #[test]
    fn clean_partition_unchanged() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let nxt = f.new_block();
        f.jump(nxt);
        f.switch_to(nxt);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let cfg = Cfg::compute(p.proc(p.entry));
        let mut sbs = vec![SbBuild::from_original(vec![BlockId::new(0), nxt])];
        let (n, pieces) = split_side_entrances(&cfg, &mut sbs);
        assert_eq!(n, 0);
        assert_eq!(sbs.len(), 1);
        assert_eq!(sbs[0].blocks.len(), 2);
        assert_eq!(pieces, vec![Piece { origin: 0, fragment: false }]);
    }
}
