//! The complete formation pipeline, and formation + compaction in one call.

use crate::config::{FormConfig, Scheme};
use crate::enlarge::{enlarge_edge, enlarge_path, snapshot_terms, SbBuild, SbIndex};
use crate::fixup::split_side_entrances;
use crate::guard::PipelineError;
use crate::select::{select_traces_edge, select_traces_path, Trace};
use crate::tail_dup::tail_duplicate;
use crate::unit::CompileUnit;
use pps_compact::{try_compact_program_obs, CompactConfig, CompactedProgram, SuperblockSpec};
use pps_ir::{BlockId, ProcId, Program};
use pps_obs::{ArgValue, Obs};
use pps_profile::{EdgeProfile, PathProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Aggregate statistics of one formation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FormStats {
    /// Superblocks formed (before compaction stubs).
    pub superblocks: u64,
    /// Blocks copied by tail duplication.
    pub tail_dup_blocks: u64,
    /// Blocks appended by enlargement.
    pub enlarged_blocks: u64,
    /// Superblocks skipped by the path completion-frequency check.
    pub skipped_low_completion: u64,
    /// Side-entrance splits performed by fixup.
    pub splits: u64,
    /// Static program size (instructions) before formation.
    pub static_before: u64,
    /// Static program size (instructions) after formation.
    pub static_after: u64,
}

/// A formed program: the superblock partition per procedure.
#[derive(Debug, Clone)]
pub struct FormedProgram {
    /// Per-procedure superblocks, each with physical blocks and the
    /// original (profile-time) block per position.
    pub partition: Vec<Vec<SuperblockSpec>>,
    /// Per-procedure original-block maps (physical → original), for
    /// diagnostics.
    pub orig_of: Vec<Vec<BlockId>>,
    /// Formation statistics.
    pub stats: FormStats,
}

/// Forms superblocks over the whole program with the given scheme.
///
/// Mutates the program (tail duplication and enlargement copy blocks and
/// rewire edges) while preserving observable semantics. Profiles must have
/// been collected on the program *before* this call; original-id bookkeeping
/// keeps the queries valid.
///
/// # Errors
/// Returns [`PipelineError::MissingPathProfile`] when `scheme` needs a path
/// profile and `path` is `None`.
pub fn form_program(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
) -> Result<FormedProgram, PipelineError> {
    form_program_obs(program, edge, path, scheme, config, &Obs::noop())
}

/// [`form_program`] with observability: per-procedure `form` spans with
/// child pass spans (`select` / `tail_dup` / `enlarge` / `fixup`),
/// formation counters, and `form.trace_selected` / `form.enlarge_skipped`
/// decision events flow into `obs`.
///
/// # Errors
/// As [`form_program`].
pub fn form_program_obs(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    obs: &Obs,
) -> Result<FormedProgram, PipelineError> {
    if scheme.needs_path_profile() && path.is_none() {
        return Err(PipelineError::MissingPathProfile { scheme: scheme.name() });
    }
    let mut stats = FormStats {
        static_before: program.static_size() as u64,
        ..FormStats::default()
    };
    let mut partition = Vec::with_capacity(program.procs.len());
    let mut orig_maps = Vec::with_capacity(program.procs.len());

    for pi in 0..program.procs.len() {
        let pid = ProcId::new(pi as u32);
        let (sbs, orig_of) = form_proc(program, pid, edge, path, scheme, config, &mut stats, obs);
        partition.push(
            sbs.into_iter()
                .map(|sb| SuperblockSpec::new(sb.blocks))
                .collect(),
        );
        orig_maps.push(orig_of);
    }
    stats.static_after = program.static_size() as u64;
    stats.superblocks = partition.iter().map(|p: &Vec<SuperblockSpec>| p.len() as u64).sum();
    Ok(FormedProgram { partition, orig_of: orig_maps, stats })
}

/// [`form_program`] with the per-procedure work fanned out across `jobs`
/// scoped worker threads.
///
/// Every procedure is checked out as an independent [`CompileUnit`]
/// (`Send`, owning its body and analysis cache) while the profiles are
/// shared read-only. Workers claim units through an atomic index; results
/// are merged back in procedure order, so the produced partition, original
/// maps, and statistics are identical to the serial [`form_program`] for
/// any `jobs` value. Formation on this path is unguarded (the guard's
/// whole-program verification and differential oracle are inherently
/// serial) and unobserved per-procedure (workers run with no-op `Obs`).
///
/// # Errors
/// As [`form_program`].
pub fn form_program_parallel(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    jobs: usize,
) -> Result<FormedProgram, PipelineError> {
    if scheme.needs_path_profile() && path.is_none() {
        return Err(PipelineError::MissingPathProfile { scheme: scheme.name() });
    }
    let jobs = jobs.max(1);
    let n_procs = program.procs.len();
    if jobs == 1 || n_procs <= 1 {
        return form_program(program, edge, path, scheme, config);
    }
    let mut stats = FormStats {
        static_before: program.static_size() as u64,
        ..FormStats::default()
    };

    // Check every procedure out of the program; each unit is a
    // self-contained work item.
    let slots: Vec<Mutex<Option<CompileUnit>>> = (0..n_procs)
        .map(|pi| {
            let pid = ProcId::new(pi as u32);
            Mutex::new(Some(CompileUnit::detach(program, pid)))
        })
        .collect();
    type FormedUnit = (CompileUnit, Vec<SbBuild>, Vec<BlockId>, FormStats);
    let results: Vec<Mutex<Option<FormedUnit>>> =
        (0..n_procs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n_procs) {
            scope.spawn(|| {
                let obs = Obs::noop();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_procs {
                        break;
                    }
                    let mut unit = slots[i].lock().unwrap().take().expect("unclaimed unit");
                    let mut local = FormStats::default();
                    let (sbs, orig_of) =
                        form_unit(&mut unit, edge, path, scheme, config, &mut local, &obs);
                    *results[i].lock().unwrap() = Some((unit, sbs, orig_of, local));
                }
            });
        }
    });

    // Reattach and merge in procedure order: deterministic regardless of
    // which worker formed which unit.
    let mut partition = Vec::with_capacity(n_procs);
    let mut orig_maps = Vec::with_capacity(n_procs);
    for slot in results {
        let (unit, sbs, orig_of, local) =
            slot.into_inner().unwrap().expect("worker completed unit");
        unit.reattach(program);
        partition.push(
            sbs.into_iter()
                .map(|sb| SuperblockSpec::new(sb.blocks))
                .collect::<Vec<SuperblockSpec>>(),
        );
        orig_maps.push(orig_of);
        stats.tail_dup_blocks += local.tail_dup_blocks;
        stats.enlarged_blocks += local.enlarged_blocks;
        stats.skipped_low_completion += local.skipped_low_completion;
        stats.splits += local.splits;
    }
    stats.static_after = program.static_size() as u64;
    stats.superblocks = partition.iter().map(|p: &Vec<SuperblockSpec>| p.len() as u64).sum();
    Ok(FormedProgram { partition, orig_of: orig_maps, stats })
}

/// Forms superblocks for a single procedure — the per-procedure unit of
/// work [`form_program`] iterates, exposed for the recovery boundary in
/// [`crate::guard`], which must be able to form, validate, and on failure
/// roll back one procedure at a time.
///
/// Only procedure `pid` is mutated. `stats` is updated in place (snapshot
/// it before the call to support rollback); program-level fields
/// (`static_before`/`static_after`/`superblocks`) are left to the caller.
///
/// # Errors
/// Returns [`PipelineError::MissingPathProfile`] when `scheme` needs a path
/// profile and `path` is `None`.
pub fn form_proc_partition(
    program: &mut Program,
    pid: ProcId,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    stats: &mut FormStats,
) -> Result<(Vec<SuperblockSpec>, Vec<BlockId>), PipelineError> {
    form_proc_partition_obs(program, pid, edge, path, scheme, config, stats, &Obs::noop())
}

/// [`form_proc_partition`] with observability (see [`form_program_obs`]).
///
/// # Errors
/// As [`form_proc_partition`].
#[allow(clippy::too_many_arguments)]
pub fn form_proc_partition_obs(
    program: &mut Program,
    pid: ProcId,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    stats: &mut FormStats,
    obs: &Obs,
) -> Result<(Vec<SuperblockSpec>, Vec<BlockId>), PipelineError> {
    if scheme.needs_path_profile() && path.is_none() {
        return Err(PipelineError::MissingPathProfile { scheme: scheme.name() });
    }
    let (sbs, orig_of) = form_proc(program, pid, edge, path, scheme, config, stats, obs);
    let specs = sbs
        .into_iter()
        .map(|sb| SuperblockSpec::new(sb.blocks))
        .collect();
    Ok((specs, orig_of))
}

/// Per-procedure formation entry used by [`form_program_obs`] and the
/// guard boundary: checks the procedure out as a [`CompileUnit`], forms it,
/// and checks it back in.
#[allow(clippy::too_many_arguments)]
fn form_proc(
    program: &mut Program,
    pid: ProcId,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    stats: &mut FormStats,
    obs: &Obs,
) -> (Vec<SbBuild>, Vec<BlockId>) {
    let mut unit = CompileUnit::detach(program, pid);
    let out = form_unit(&mut unit, edge, path, scheme, config, stats, obs);
    unit.reattach(program);
    out
}

/// Forms superblocks for one compilation unit — the independent (`Send`)
/// work item of the pipeline. Scopes `obs` to the procedure, opens the
/// `form` span, and records formation counter deltas around the real work
/// in [`form_unit_inner`]. Every pass consumes the unit's cached analyses;
/// only mutations (which bump the procedure's generation) trigger
/// recomputation.
pub fn form_unit(
    unit: &mut CompileUnit,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    stats: &mut FormStats,
    obs: &Obs,
) -> (Vec<SbBuild>, Vec<BlockId>) {
    if !obs.is_recording() {
        return form_unit_inner(unit, edge, path, scheme, config, stats, obs);
    }
    let obs = obs.with_label("proc", unit.proc().name.as_str());
    let span = obs
        .span("form")
        .arg("proc", unit.proc().name.as_str())
        .arg("scheme", scheme.name());
    let before = *stats;
    let out = form_unit_inner(unit, edge, path, scheme, config, stats, &obs);
    obs.counter("form.superblocks", out.0.len() as u64);
    obs.counter("form.tail_dup_blocks", stats.tail_dup_blocks - before.tail_dup_blocks);
    obs.counter("form.enlarged_blocks", stats.enlarged_blocks - before.enlarged_blocks);
    obs.counter(
        "form.skipped_low_completion",
        stats.skipped_low_completion - before.skipped_low_completion,
    );
    obs.counter("form.splits", stats.splits - before.splits);
    let (hits, misses) = unit.cache_stats();
    obs.counter("form.analysis_cache_hits", hits);
    obs.counter("form.analysis_cache_misses", misses);
    drop(span);
    out
}

fn form_unit_inner(
    unit: &mut CompileUnit,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    config: &FormConfig,
    stats: &mut FormStats,
    obs: &Obs,
) -> (Vec<SbBuild>, Vec<BlockId>) {
    let pid = unit.pid();
    let mut orig_of: Vec<BlockId> = unit.proc().block_ids().collect();

    if scheme == Scheme::BasicBlock {
        let cfg = unit.cfg();
        let sbs = unit
            .proc()
            .block_ids()
            .filter(|b| cfg.is_reachable(*b))
            .map(|b| SbBuild::from_original(vec![b]))
            .collect();
        return (sbs, orig_of);
    }

    // 1. Trace selection.
    let select_span = obs.span("select").arg("scheme", scheme.name());
    let analysis = unit.analysis();
    let traces: Vec<Trace> = match scheme {
        Scheme::Edge { .. } => select_traces_edge(unit.proc(), pid, &analysis, edge, config),
        // The Pk*/Px* schemes run the path selector over their derived
        // profile view (k-iteration substring counts / post-inline paths);
        // the fidelity difference lives entirely in the profile.
        Scheme::Path { .. } | Scheme::KPath { .. } | Scheme::Inter { .. } => {
            select_traces_path(unit.proc(), pid, &analysis, path.expect("path profile"), config)
        }
        Scheme::BasicBlock => unreachable!(),
    };
    drop(select_span.arg("traces", traces.len()));
    if obs.is_recording() {
        obs.counter("form.traces_selected", traces.len() as u64);
        for (ti, trace) in traces.iter().enumerate() {
            let head = trace.blocks[0];
            obs.decision(
                "form.trace_selected",
                &[
                    ("scheme", ArgValue::from(scheme.name())),
                    ("trace", ArgValue::from(ti)),
                    ("head", ArgValue::from(head.index())),
                    ("blocks", ArgValue::from(trace.blocks.len())),
                    ("head_freq", ArgValue::from(edge.block_freq(pid, head))),
                ],
            );
        }
    }

    // 2. Tail duplication.
    let tail_span = obs.span("tail_dup");
    let mut sbs: Vec<SbBuild> = Vec::with_capacity(traces.len());
    let mut chains: Vec<SbBuild> = Vec::new();
    if config.tail_duplication {
        for trace in &traces {
            // Each duplication rewires edges, so the cached CFG refreshes
            // per trace; with no duplications it is a straight cache hit.
            let cfg = unit.cfg();
            let dup = tail_duplicate(unit.proc_mut(), trace, &cfg);
            stats.tail_dup_blocks += dup.chain.len() as u64;
            for (&c, &o) in dup.chain.iter().zip(dup.chain_orig.iter()) {
                debug_assert_eq!(c.index(), orig_of.len());
                orig_of.push(orig_of[o.index()]);
            }
            sbs.push(SbBuild { blocks: dup.main.clone(), orig: dup.main });
            if !dup.chain.is_empty() {
                let orig: Vec<BlockId> =
                    dup.chain_orig.iter().map(|o| orig_of[o.index()]).collect();
                chains.push(SbBuild { blocks: dup.chain, orig });
            }
        }
    } else {
        // Ablation: keep only side-entrance-free traces whole; break the
        // rest into singletons.
        for trace in &traces {
            let cfg = unit.cfg();
            let clean = trace.blocks.iter().enumerate().skip(1).all(|(i, &b)| {
                cfg.preds[b.index()].iter().all(|&p| p == trace.blocks[i - 1])
            });
            if clean {
                sbs.push(SbBuild::from_original(trace.blocks.clone()));
            } else {
                for &b in &trace.blocks {
                    sbs.push(SbBuild::from_original(vec![b]));
                }
            }
        }
    }
    let n_mains = sbs.len();
    sbs.extend(chains);
    // Compensation-code flags: tail-dup chains (and, later, repair chains)
    // are absorbable by P4e.
    let mut is_chain: Vec<bool> = (0..sbs.len()).map(|i| i >= n_mains).collect();

    // Split any residual side entrances before classification (tail
    // duplication of later traces may have redirected edges into earlier
    // copy chains).
    let cfg = unit.cfg();
    let (n, pieces) = split_side_entrances(&cfg, &mut sbs);
    stats.splits += n as u64;
    is_chain = pieces.iter().map(|p| is_chain[p.origin]).collect();
    drop(tail_span.arg("superblocks", sbs.len()).arg("splits", n));

    // 3. Enlargement, iterated with fixup. An enlargement walk that
    // diverges from another superblock's internal trace leaves a copy with
    // an edge into that superblock's interior; fixup splits the entered
    // superblock there, and the next pass may enlarge the fresh fragments
    // (whose heads the new classification now sees). Two to three passes
    // reach a fixpoint in practice; each superblock is enlarged at most
    // once.
    if config.enlargement {
        let mut pending: Vec<bool> = vec![true; sbs.len()];
        for pass in 0..3 {
            if !pending.iter().any(|&p| p) {
                break;
            }
            let _enlarge_span = obs.span("enlarge").arg("pass", pass);
            let analysis = unit.analysis();
            let index = SbIndex::build(unit.proc(), pid, &sbs, &is_chain, edge, &analysis, config);
            let snapshot: Vec<Vec<BlockId>> = sbs.iter().map(|s| s.blocks.clone()).collect();
            let term_snapshot = snapshot_terms(unit.proc());
            // Hot-first order by head frequency.
            let mut order: Vec<usize> = (0..sbs.len()).filter(|&i| pending[i]).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(edge.block_freq(pid, sbs[i].orig[0])));
            let proc = unit.proc_mut();
            let mut new_chains: Vec<SbBuild> = Vec::new();
            for i in order {
                match scheme {
                    Scheme::Edge { unroll } => {
                        let (st, chains) = enlarge_edge(
                            proc, pid, &mut sbs[i], i as u32, &index, &term_snapshot, &snapshot,
                            edge, &mut orig_of, unroll, config,
                        );
                        stats.enlarged_blocks += u64::from(st.appended);
                        new_chains.extend(chains);
                    }
                    Scheme::Path { .. } | Scheme::KPath { .. } | Scheme::Inter { .. } => {
                        // Pk*/Px* enlarge exactly like P{n}: cross-iteration
                        // and cross-call growth are bounded by where their
                        // derived profiles have support, not by new rules.
                        let (unroll, restrained) = match scheme {
                            Scheme::Path { unroll, restrained } => (unroll, restrained),
                            Scheme::KPath { unroll, .. } | Scheme::Inter { unroll } => {
                                (unroll, false)
                            }
                            _ => unreachable!(),
                        };
                        let (st, chains) = enlarge_path(
                            proc, pid, &mut sbs[i], i as u32, &index, &term_snapshot,
                            path.expect("path profile"), &mut orig_of, unroll, restrained, config,
                        );
                        stats.enlarged_blocks += u64::from(st.appended);
                        stats.skipped_low_completion += u64::from(st.skipped_low_completion);
                        if st.skipped_low_completion {
                            obs.decision(
                                "form.enlarge_skipped",
                                &[
                                    ("sb", ArgValue::from(i)),
                                    ("head", ArgValue::from(sbs[i].orig[0].index())),
                                    ("reason", ArgValue::from("low_completion")),
                                ],
                            );
                        }
                        new_chains.extend(chains);
                    }
                    Scheme::BasicBlock => unreachable!(),
                }
            }
            // Compensation chains are complete superblocks; they are not
            // themselves enlarged.
            let n_before = sbs.len();
            sbs.extend(new_chains);
            pending.resize(sbs.len(), false);
            is_chain.resize(sbs.len(), true);
            let _ = n_before;
            let cfg = unit.cfg();
            let (n, pieces) = split_side_entrances(&cfg, &mut sbs);
            stats.splits += n as u64;
            // Fresh fragments become enlargement candidates; everything
            // else is done.
            pending = pieces.iter().map(|p| p.fragment).collect();
            is_chain = pieces.iter().map(|p| is_chain[p.origin]).collect();
            if n == 0 {
                break;
            }
        }
    }

    // Final fixup (harmless if already clean).
    let fixup_span = obs.span("fixup");
    let cfg = unit.cfg();
    let (n, _) = split_side_entrances(&cfg, &mut sbs);
    stats.splits += n as u64;
    drop(fixup_span.arg("splits", n));
    (sbs, orig_of)
}

/// Forms superblocks and immediately compacts them: the paper's complete
/// `form` + `compact` back end.
///
/// This is the *unguarded* pipeline: any internal invariant violation
/// surfaces as an `Err` (or, for bugs that panic outright, a panic). Use
/// [`crate::guard::guarded_form_and_compact`] for the fault-tolerant entry
/// point with per-procedure recovery.
///
/// # Errors
/// Returns [`PipelineError::MissingPathProfile`] when `scheme` needs a path
/// profile none was given, and [`PipelineError::Compaction`] when the formed
/// partition fails compaction validation.
pub fn form_and_compact(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
) -> Result<(CompactedProgram, FormStats), PipelineError> {
    form_and_compact_obs(program, edge, path, scheme, form_config, compact_config, &Obs::noop())
}

/// [`form_and_compact`] with observability threaded through both formation
/// and compaction (see [`form_program_obs`]).
///
/// # Errors
/// As [`form_and_compact`].
pub fn form_and_compact_obs(
    program: &mut Program,
    edge: &EdgeProfile,
    path: Option<&PathProfile>,
    scheme: Scheme,
    form_config: &FormConfig,
    compact_config: &CompactConfig,
    obs: &Obs,
) -> Result<(CompactedProgram, FormStats), PipelineError> {
    let formed = form_program_obs(program, edge, path, scheme, form_config, obs)?;
    let compacted = try_compact_program_obs(program, &formed.partition, compact_config, obs)
        .map_err(PipelineError::Compaction)?;
    Ok((compacted, formed.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;
    use pps_compact::compact_program;
    use pps_ir::{AluOp, Operand, Reg};
    use pps_profile::{EdgeProfiler, PathProfiler};

    /// A program exercising loops, joins, calls and memory: computes a
    /// checksum over a small table with a conditional in the loop.
    fn workload() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.set_memory(1 << 12, (0..64).map(|x| (x * 7 + 3) % 13).collect());
        let helper = pb.declare_proc("mix", 2);
        let mut h = pb.begin_declared(helper);
        let a = Reg::new(0);
        let b = Reg::new(1);
        let r = h.reg();
        h.alu(AluOp::Xor, r, a, b);
        h.alu(AluOp::Mul, r, r, 31i64);
        h.ret(Some(Operand::Reg(r)));
        h.finish();

        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let acc = f.reg();
        let c = f.reg();
        let v = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        f.mov(acc, 0i64);
        let head = f.new_block();
        let odd = f.new_block();
        let even = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 64i64);
        f.load(v, m, 0);
        f.alu(AluOp::Rem, m, i, 3i64);
        f.branch(m, odd, even);
        f.switch_to(odd);
        f.alu(AluOp::Add, acc, acc, v);
        f.jump(latch);
        f.switch_to(even);
        let t = f.reg();
        f.call(helper, vec![Operand::Reg(acc), Operand::Reg(v)], Some(t));
        f.alu(AluOp::Add, acc, acc, t);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.out(acc);
        f.ret(Some(Operand::Reg(acc)));
        let main = f.finish();
        pb.finish(main)
    }

    fn profiles(p: &Program, arg: i64) -> (EdgeProfile, PathProfile) {
        let mut ep = EdgeProfiler::new(p);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[arg], &mut ep)
            .unwrap();
        let mut pp = PathProfiler::new(p, 15);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[arg], &mut pp)
            .unwrap();
        (ep.finish(), pp.finish())
    }

    #[test]
    fn all_schemes_preserve_semantics_and_partition() {
        for scheme in [
            Scheme::BasicBlock,
            Scheme::M4,
            Scheme::M16,
            Scheme::P4,
            Scheme::P4E,
        ] {
            let mut p = workload();
            // Train on 150 iterations; test on 87 (different input).
            let (ep, pp) = profiles(&p, 150);
            let before = Interp::new(&p, ExecConfig::default()).run(&[87]).unwrap();
            let formed = form_program(&mut p, &ep, Some(&pp), scheme, &FormConfig::default())
                .unwrap();
            verify_program(&p).unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            let after = Interp::new(&p, ExecConfig::default()).run(&[87]).unwrap();
            assert_eq!(before.output, after.output, "{}", scheme.name());
            assert_eq!(before.return_value, after.return_value, "{}", scheme.name());

            // Partition invariants hold (compact_program would panic
            // otherwise; run it for the full check + semantics again).
            let compacted = compact_program(
                &mut p,
                &formed.partition,
                &CompactConfig::default(),
            );
            verify_program(&p).unwrap();
            let after2 = Interp::new(&p, ExecConfig::default()).run(&[87]).unwrap();
            assert_eq!(before.output, after2.output, "{} post-compact", scheme.name());
            assert!(compacted.total_items() > 0);
        }
    }

    #[test]
    fn enlargement_grows_code_for_hot_loops() {
        let mut p = workload();
        let (ep, pp) = profiles(&p, 300);
        let formed =
            form_program(&mut p, &ep, Some(&pp), Scheme::P4, &FormConfig::default()).unwrap();
        assert!(formed.stats.enlarged_blocks > 0, "hot loop enlarged");
        assert!(formed.stats.static_after > formed.stats.static_before);
    }

    #[test]
    fn m16_expands_more_than_m4() {
        let mut p4 = workload();
        let mut p16 = workload();
        let (ep, _) = profiles(&p4, 300);
        let f4 = form_program(&mut p4, &ep, None, Scheme::M4, &FormConfig::default()).unwrap();
        let f16 = form_program(&mut p16, &ep, None, Scheme::M16, &FormConfig::default()).unwrap();
        assert!(
            f16.stats.static_after > f4.stats.static_after,
            "M16 {} !> M4 {}",
            f16.stats.static_after,
            f4.stats.static_after
        );
    }

    #[test]
    fn form_and_compact_end_to_end() {
        let mut p = workload();
        let (ep, pp) = profiles(&p, 120);
        let before = Interp::new(&p, ExecConfig::default()).run(&[64]).unwrap();
        let (compacted, stats) = form_and_compact(
            &mut p,
            &ep,
            Some(&pp),
            Scheme::P4,
            &FormConfig::default(),
            &CompactConfig::default(),
        )
        .unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[64]).unwrap();
        assert_eq!(before.output, after.output);
        assert!(stats.superblocks > 0);
        assert_eq!(compacted.procs.len(), p.procs.len());
    }

    #[test]
    fn parallel_formation_matches_serial() {
        for scheme in [Scheme::BasicBlock, Scheme::M4, Scheme::P4, Scheme::P4E] {
            let mut serial_p = workload();
            let mut parallel_p = workload();
            let (ep, pp) = profiles(&serial_p, 150);
            let config = FormConfig::default();
            let serial =
                form_program(&mut serial_p, &ep, Some(&pp), scheme, &config).unwrap();
            let parallel =
                form_program_parallel(&mut parallel_p, &ep, Some(&pp), scheme, &config, 4)
                    .unwrap();
            assert_eq!(serial.partition, parallel.partition, "{}", scheme.name());
            assert_eq!(serial.orig_of, parallel.orig_of, "{}", scheme.name());
            assert_eq!(serial.stats, parallel.stats, "{}", scheme.name());
            assert_eq!(serial_p, parallel_p, "{}: transformed programs differ", scheme.name());
            verify_program(&parallel_p).unwrap();
        }
    }

    #[test]
    fn basic_block_scheme_is_singletons() {
        let mut p = workload();
        let (ep, _) = profiles(&p, 50);
        let formed = form_program(&mut p, &ep, None, Scheme::BasicBlock, &FormConfig::default())
            .unwrap();
        for sbs in &formed.partition {
            assert!(sbs.iter().all(|s| s.len() == 1));
        }
        assert_eq!(formed.stats.enlarged_blocks, 0);
        assert_eq!(formed.stats.static_before, formed.stats.static_after);
    }
}
