//! Tail duplication: turning traces into superblocks (paper §2.1).
//!
//! A selected trace may have *side entrances* — edges into its interior
//! blocks from outside. Tail duplication copies the trace tail from the
//! first side-entered position to the end, and redirects every side
//! entrance into the copy chain, leaving the original trace with a single
//! entry. The copy chain itself becomes one or more superblocks (the fixup
//! pass in [`crate::fixup`] splits it at positions that received redirected
//! entrances).

use crate::select::Trace;
use pps_ir::analysis::Cfg;
use pps_ir::{BlockId, Proc};

/// The result of tail-duplicating one trace.
#[derive(Debug, Clone)]
pub struct DupResult {
    /// The main superblock: the original trace blocks (single entry now).
    pub main: Vec<BlockId>,
    /// Copy-chain blocks (empty when the trace had no side entrances),
    /// in trace order.
    pub chain: Vec<BlockId>,
    /// For each chain block, the original block it copies.
    pub chain_orig: Vec<BlockId>,
}

/// Tail-duplicates `trace` within `proc`, rewriting side-entrance
/// predecessors. `cfg` must reflect the current procedure (recompute
/// between traces — earlier duplications change predecessor sets).
pub fn tail_duplicate(proc: &mut Proc, trace: &Trace, cfg: &Cfg) -> DupResult {
    let blocks = &trace.blocks;
    // Find the first interior position with a side entrance.
    let mut first_side: Option<usize> = None;
    for (i, &b) in blocks.iter().enumerate().skip(1) {
        let prev = blocks[i - 1];
        if cfg.preds[b.index()].iter().any(|&p| p != prev) {
            first_side = Some(i);
            break;
        }
    }
    let Some(start) = first_side else {
        return DupResult { main: blocks.clone(), chain: Vec::new(), chain_orig: Vec::new() };
    };

    // Create copies of blocks[start..].
    let tail: Vec<BlockId> = blocks[start..].to_vec();
    let mut copies = Vec::with_capacity(tail.len());
    for &b in &tail {
        let cloned = proc.block(b).clone();
        copies.push(proc.push_block(cloned));
    }
    // Rewire internal edges of the copy chain: copy of blocks[j] targeting
    // blocks[j+1] now targets the copy of blocks[j+1].
    for (k, &c) in copies.iter().enumerate() {
        if k + 1 < copies.len() {
            let orig_next = tail[k + 1];
            let next_copy = copies[k + 1];
            proc.block_mut(c)
                .term
                .retarget(|t| if t == orig_next { next_copy } else { t });
        }
    }
    // Redirect side entrances: every predecessor of blocks[j] (j >= start)
    // other than its in-trace predecessor now jumps to the copy.
    for (k, &orig) in tail.iter().enumerate() {
        let j = start + k;
        let prev = blocks[j - 1];
        let copy = copies[k];
        let preds: Vec<BlockId> = cfg.preds[orig.index()]
            .iter()
            .copied()
            .filter(|&p| p != prev)
            .collect();
        for p in preds {
            // Skip copy-chain internal predecessors (they are new blocks
            // not present in `cfg`).
            proc.block_mut(p)
                .term
                .retarget(|t| if t == orig { copy } else { t });
        }
    }
    DupResult { main: blocks.clone(), chain: copies, chain_orig: tail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;
    use pps_ir::{AluOp, Operand, Program, Reg};

    /// Diamond re-join: entry -> (a | b) -> join -> ret. Trace [entry, a,
    /// join] has a side entrance at join (from b).
    fn diamond() -> (Program, [BlockId; 3]) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        let join = f.new_block();
        let x = f.reg();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.mov(x, 1i64);
        f.jump(join);
        f.switch_to(b);
        f.mov(x, 2i64);
        f.jump(join);
        f.switch_to(join);
        let y = f.reg();
        f.alu(AluOp::Mul, y, x, 10i64);
        f.out(y);
        f.ret(Some(Operand::Reg(y)));
        let main = f.finish();
        (pb.finish(main), [a, b, join])
    }

    #[test]
    fn side_entrance_redirected_to_copy() {
        let (mut p, [a, b, join]) = diamond();
        let before_t = Interp::new(&p, ExecConfig::default()).run(&[1]).unwrap();
        let before_f = Interp::new(&p, ExecConfig::default()).run(&[0]).unwrap();
        let entry = p.entry;
        let trace = Trace { blocks: vec![BlockId::new(0), a, join] };
        let cfg = Cfg::compute(p.proc(entry));
        let res = tail_duplicate(p.proc_mut(entry), &trace, &cfg);
        assert_eq!(res.main, vec![BlockId::new(0), a, join]);
        assert_eq!(res.chain.len(), 1);
        assert_eq!(res.chain_orig, vec![join]);
        verify_program(&p).unwrap();
        // Side entrance removed: join now has only `a` as predecessor.
        let cfg2 = Cfg::compute(p.proc(entry));
        assert_eq!(cfg2.preds[join.index()], vec![a]);
        // b now jumps to the copy.
        let copy = res.chain[0];
        assert_eq!(cfg2.preds[copy.index()], vec![b]);
        // Semantics unchanged.
        let after_t = Interp::new(&p, ExecConfig::default()).run(&[1]).unwrap();
        let after_f = Interp::new(&p, ExecConfig::default()).run(&[0]).unwrap();
        assert_eq!(before_t.output, after_t.output);
        assert_eq!(before_f.output, after_f.output);
    }

    #[test]
    fn no_side_entrance_is_identity() {
        let (mut p, [a, _b, _join]) = diamond();
        let entry = p.entry;
        let before = p.clone();
        let trace = Trace { blocks: vec![BlockId::new(0), a] };
        let cfg = Cfg::compute(p.proc(entry));
        let res = tail_duplicate(p.proc_mut(entry), &trace, &cfg);
        assert!(res.chain.is_empty());
        assert_eq!(p, before);
    }

    #[test]
    fn multi_block_tail_copied_and_chained() {
        // entry -> (a | b); a -> m; b -> m; m -> n; n -> ret.
        // Trace [entry, a, m, n]: side entrance at m; copies of m and n.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        let m = f.new_block();
        let n = f.new_block();
        let x = f.reg();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.mov(x, 5i64);
        f.jump(m);
        f.switch_to(b);
        f.mov(x, 7i64);
        f.jump(m);
        f.switch_to(m);
        let y = f.reg();
        f.alu(AluOp::Add, y, x, 1i64);
        f.jump(n);
        f.switch_to(n);
        f.out(y);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let before_t = Interp::new(&p, ExecConfig::default()).run(&[1]).unwrap();
        let before_f = Interp::new(&p, ExecConfig::default()).run(&[0]).unwrap();
        let entry = p.entry;
        let trace = Trace { blocks: vec![BlockId::new(0), a, m, n] };
        let cfg = Cfg::compute(p.proc(entry));
        let res = tail_duplicate(p.proc_mut(entry), &trace, &cfg);
        assert_eq!(res.chain.len(), 2);
        verify_program(&p).unwrap();
        let cfg2 = Cfg::compute(p.proc(entry));
        // Copy chain: b -> copy_m -> copy_n.
        let (cm, cn) = (res.chain[0], res.chain[1]);
        assert_eq!(cfg2.preds[cm.index()], vec![b]);
        assert_eq!(cfg2.preds[cn.index()], vec![cm]);
        // Originals: single-entry all the way.
        assert_eq!(cfg2.preds[m.index()], vec![a]);
        assert_eq!(cfg2.preds[n.index()], vec![m]);
        let after_t = Interp::new(&p, ExecConfig::default()).run(&[1]).unwrap();
        let after_f = Interp::new(&p, ExecConfig::default()).run(&[0]).unwrap();
        assert_eq!(before_t.output, after_t.output);
        assert_eq!(before_f.output, after_f.output);
    }

    #[test]
    fn loop_back_edge_to_head_is_not_side_entrance_of_interior() {
        // Trace [head, body]: back edge body->head targets the HEAD, which
        // is allowed any predecessors; interior `body` has only head as
        // pred, so no duplication happens.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let nreg = Reg::new(0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(nreg));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let entry = p.entry;
        let trace = Trace { blocks: vec![head, body] };
        let cfg = Cfg::compute(p.proc(entry));
        let res = tail_duplicate(p.proc_mut(entry), &trace, &cfg);
        assert!(res.chain.is_empty(), "no interior side entrance");
    }
}
