//! Zero-dependency scoped-thread work pool, shared by the experiment
//! harness and the compile-service daemon.
//!
//! The experiment engine fans benchmark × scheme cells out across worker
//! threads with [`run_indexed`]: workers claim indices through one atomic
//! counter and write results into per-index slots, so the returned vector
//! is always in input order no matter which worker ran which cell.
//!
//! `pps-serve` feeds its long-lived worker team through a [`BoundedQueue`]:
//! producers `try_push` and get an immediate `Full` back when the service
//! is saturated (the daemon turns that into a `Busy` reply), consumers
//! block on `pop`, and `close` lets consumers drain everything already
//! accepted before they exit — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The machine's available parallelism (the `--jobs` default); 1 when the
/// runtime cannot tell.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `work(i)` for every `i in 0..n` across up to `jobs` scoped worker
/// threads and returns the results in index order.
///
/// `jobs` is clamped to `[1, n]`; with `jobs == 1` the work runs inline on
/// the calling thread (no pool, no locks). Worker panics propagate to the
/// caller when the scope joins.
pub fn run_indexed<T, F>(jobs: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return (0..n).map(work).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = work(i);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// Why a [`BoundedQueue::try_push`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back so the caller can
    /// reject it upstream (backpressure).
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue built on
/// `Mutex` + `Condvar` only.
///
/// Unlike `std::sync::mpsc::sync_channel`, rejection is explicit
/// ([`PushError::Full`] hands the item back immediately, never blocking the
/// producer) and closing is cooperative: after [`close`](Self::close),
/// [`pop`](Self::pop) keeps returning items until the queue is empty, then
/// returns `None` — so a draining shutdown never drops accepted work.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (a racy snapshot, for metrics).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when no items are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means no item will ever come again.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Stops accepting new items. Consumers drain what was already
    /// accepted, then their `pop` calls return `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 7, 64] {
            let out = run_indexed(jobs, 40, |i| {
                // Stagger completion so claim order differs from finish order.
                std::thread::sleep(std::time::Duration::from_micros((40 - i as u64) * 10));
                i * i
            });
            assert_eq!(out, (0..40).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_items_and_zero_jobs_are_fine() {
        assert!(run_indexed(0, 0, |i| i).is_empty());
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_indexed(4, 16, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "no overlap observed");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn queue_rejects_when_full_and_drains_on_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        // Accepted work survives the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_hands_items_across_threads() {
        let q = BoundedQueue::new(8);
        let total: usize = std::thread::scope(|scope| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let mut sum = 0usize;
                        while let Some(v) = q.pop() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=100usize {
                loop {
                    match q.try_push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(_)) => std::thread::yield_now(),
                        Err(PushError::Closed(_)) => unreachable!(),
                    }
                }
            }
            q.close();
            consumers.into_iter().map(|c| c.join().unwrap()).sum()
        });
        assert_eq!(total, 5050);
    }
}
