//! Superblock enlargement (paper §2.1–2.2).
//!
//! Enlargement appends *copies* of likely successor blocks to a superblock,
//! so the compactor sees more instructions and execution reaches further
//! before leaving a scheduled region.
//!
//! [`enlarge_edge`] implements the classical IMPACT trio over edge
//! profiles: branch target expansion for non-loop superblocks, and loop
//! peeling / loop unrolling for superblock loops (peeling is realized as
//! unrolling by the expected trip count — see DESIGN.md §4).
//!
//! [`enlarge_path`] implements the paper's unified mechanism (Figure 2):
//! repeatedly append the *most-likely path successor* of the entire trace
//! so far. Because the path profile gives exact frequencies, (a) only
//! superblocks that actually complete with high frequency are enlarged, and
//! (b) the walk automatically performs branch target expansion, peeling,
//! and unrolling, and follows correlated and phased behavior across loop
//! iterations (Figure 3).
//!
//! Copies take their terminator from a snapshot of the post-tail-
//! duplication CFG, so a copied loop latch branches back to the *original*
//! loop head (where the walk recognizes the crossing), not into an earlier
//! copy. A walk that stops mid-body is rolled back to the last *clean*
//! point — where every dangling off-trace edge targets a superblock head —
//! so enlargement never introduces side entrances.

use crate::config::FormConfig;
use pps_ir::analysis::ProcAnalysis;
use pps_ir::{Block, BlockId, Proc, ProcId, Terminator};
use pps_profile::{EdgeProfile, PathProfile};

/// A superblock being built: physical blocks plus the original block each
/// position copies (identity for non-copies). Frequencies are always
/// queried on original ids, since profiles were collected on the
/// unmodified program.
#[derive(Debug, Clone)]
pub struct SbBuild {
    /// Physical blocks in on-trace order.
    pub blocks: Vec<BlockId>,
    /// Original (profile-time) block per position.
    pub orig: Vec<BlockId>,
}

impl SbBuild {
    /// A superblock over original (uncopied) blocks.
    pub fn from_original(blocks: Vec<BlockId>) -> Self {
        SbBuild { orig: blocks.clone(), blocks }
    }

    /// Head block (physical).
    pub fn head(&self) -> BlockId {
        self.blocks[0]
    }

    /// Last block (physical).
    pub fn last(&self) -> BlockId {
        *self.blocks.last().expect("non-empty")
    }

    /// Static size in instructions (terminators included).
    pub fn static_size(&self, proc: &Proc) -> usize {
        self.blocks
            .iter()
            .map(|&b| proc.block(b).len_with_term())
            .sum()
    }
}

/// Classification of the already-formed superblocks, consulted during
/// enlargement.
#[derive(Debug, Clone)]
pub struct SbIndex {
    /// For each physical block: index of the superblock it heads, if any.
    pub head_of: Vec<Option<u32>>,
    /// Per superblock: is it a superblock loop (last block likely jumps to
    /// its head)? Used by the classical edge-based enlarger.
    pub is_loop: Vec<bool>,
    /// Per superblock: is it loop-like — a superblock loop *or* headed by a
    /// natural-loop header? Downward-only trace selection can rotate a loop
    /// so that no single superblock's last block targets its own head (the
    /// back edge lands mid-rotation); the path-based enlarger uses this
    /// broader classification for its crossing budget and the P4e candidate
    /// check.
    pub is_loopish: Vec<bool>,
    /// Per superblock: block count (heads of singletons are "transparent"
    /// to path-based expansion).
    pub len: Vec<u32>,
    /// Per superblock: is it compensation code — a tail-duplication chain
    /// or an enlargement repair chain? The paper's P4e may absorb these
    /// ("enlargement uses only tail-duplicated code") while stopping at
    /// real superblock heads.
    pub is_chain: Vec<bool>,
    /// For each block: its `(superblock, position)` in the pass-start
    /// partition (repair chains need the entered superblock's suffix).
    pub loc: Vec<Option<(u32, u32)>>,
    /// Pass-start block list per superblock.
    pub blocks: Vec<Vec<BlockId>>,
}

impl SbIndex {
    /// Builds the index over the formed superblocks. `analysis` must
    /// describe the current body of `proc` — the caller passes its cached
    /// bundle down instead of this function recomputing one per pass.
    ///
    /// A superblock is a *superblock loop* when its last block has an edge
    /// to its head and that edge is likely:
    /// `f(last → head) >= likely_threshold * f(last)` on original ids.
    pub fn build(
        proc: &Proc,
        pid: ProcId,
        sbs: &[SbBuild],
        chain_flags: &[bool],
        edge: &EdgeProfile,
        analysis: &ProcAnalysis,
        config: &FormConfig,
    ) -> Self {
        debug_assert_eq!(chain_flags.len(), sbs.len());
        let mut head_of = vec![None; proc.blocks.len()];
        let mut is_loop = Vec::with_capacity(sbs.len());
        let mut is_loopish = Vec::with_capacity(sbs.len());
        let mut len = Vec::with_capacity(sbs.len());
        let mut loc = vec![None; proc.blocks.len()];
        let mut blocks = Vec::with_capacity(sbs.len());
        for (i, sb) in sbs.iter().enumerate() {
            for (p, &b) in sb.blocks.iter().enumerate() {
                loc[b.index()] = Some((i as u32, p as u32));
            }
            blocks.push(sb.blocks.clone());
        }
        debug_assert_eq!(analysis.cfg.len(), proc.blocks.len(), "analysis is current");
        let mut is_header = vec![false; proc.blocks.len()];
        for &h in &analysis.loops.headers {
            is_header[h.index()] = true;
        }
        for (i, sb) in sbs.iter().enumerate() {
            head_of[sb.head().index()] = Some(i as u32);
            len.push(sb.blocks.len() as u32);
            let last_term = &proc.block(sb.last()).term;
            let has_back = last_term.successors().contains(&sb.head());
            let lik = if has_back {
                let lf = edge.edge_freq(pid, *sb.orig.last().expect("non-empty"), sb.orig[0]);
                let bf = edge.block_freq(pid, *sb.orig.last().expect("non-empty"));
                bf > 0 && (lf as f64) >= config.likely_threshold * (bf as f64)
            } else {
                false
            };
            is_loop.push(lik);
            is_loopish.push(lik || is_header[sb.head().index()]);
        }
        SbIndex { head_of, is_loop, is_loopish, len, loc, blocks, is_chain: chain_flags.to_vec() }
    }

    /// Superblock headed by `b`, if any.
    pub fn headed_by(&self, b: BlockId) -> Option<u32> {
        self.head_of.get(b.index()).copied().flatten()
    }
}

/// Shared enlargement machinery: appends copies with snapshot terminators
/// and repairs edges that would otherwise enter another superblock's
/// interior.
///
/// When a walk crosses into superblock `B` and then *diverges* from `B`'s
/// internal trace, the appended copy is left with an edge pointing into
/// `B`'s interior — a would-be side entrance. The grower repairs each such
/// edge with a fresh *tail-duplicate chain* of `B`'s suffix (the classical
/// compensation for entering a superblock mid-way), so enlargement never
/// degrades existing superblocks. Repairs are deferred until the walk's
/// next step (so the on-trace edge the walk itself follows is not
/// duplicated) and completed by [`finish`](Self::finish).
#[derive(Debug)]
pub struct Grower<'a> {
    /// Terminators of the pass-start CFG, indexed by block. Only blocks
    /// that existed at snapshot time can be copy sources.
    snapshot: &'a [Terminator],
    /// The copy whose unfollowed edges still await repair.
    pending_repair: Option<BlockId>,
    /// Compensation chains created by repairs (new superblocks).
    chains: Vec<SbBuild>,
    /// Blocks appended across the walk (statistics).
    appended: u32,
}

/// Longest superblock suffix a single repair may duplicate; longer
/// residues are left to the fixup splitter (rare).
const MAX_REPAIR_CHAIN: usize = 32;

impl<'a> Grower<'a> {
    /// Creates a grower for one superblock walk. The superblock must be in
    /// its pre-enlargement (clean) state.
    pub fn new(snapshot: &'a [Terminator], sb: &SbBuild) -> Self {
        let _ = sb;
        Grower { snapshot, pending_repair: None, chains: Vec::new(), appended: 0 }
    }

    /// Appends a copy of `src` to `sb`: instructions cloned from `src`, the
    /// terminator taken from the snapshot, and the current last block's
    /// edges to `src` retargeted onto the copy. Unfollowed interior edges
    /// of the *previous* copy are repaired now that the walk's direction is
    /// known.
    ///
    /// # Panics
    /// Panics if `src` postdates the snapshot (only pass-start blocks can
    /// be copy sources; the walk never encounters newer blocks because
    /// snapshot terminators only reference pass-start blocks).
    pub fn append(
        &mut self,
        proc: &mut Proc,
        sb: &mut SbBuild,
        src: BlockId,
        orig_of: &mut Vec<BlockId>,
        index: &SbIndex,
    ) -> BlockId {
        assert!(
            src.index() < self.snapshot.len(),
            "copy source {src} postdates the snapshot"
        );
        if let Some(prev) = self.pending_repair.take() {
            self.repair_unfollowed(proc, prev, Some(src), orig_of, index);
        }
        let term = self.snapshot[src.index()].clone();
        let instrs = proc.block(src).instrs.clone();
        let copy = proc.push_block(Block::new(instrs, term));
        let last = sb.last();
        proc.block_mut(last)
            .term
            .retarget(|t| if t == src { copy } else { t });
        let src_orig = orig_of[src.index()];
        orig_of.push(src_orig);
        debug_assert_eq!(orig_of.len(), proc.blocks.len());
        sb.blocks.push(copy);
        sb.orig.push(src_orig);
        self.pending_repair = Some(copy);
        self.appended += 1;
        copy
    }

    /// Completes the walk: repairs the final copy's interior edges and
    /// returns `(blocks appended, compensation chains)`. The chains must be
    /// added to the partition as superblocks.
    pub fn finish(
        mut self,
        proc: &mut Proc,
        orig_of: &mut Vec<BlockId>,
        index: &SbIndex,
    ) -> (u32, Vec<SbBuild>) {
        if let Some(prev) = self.pending_repair.take() {
            self.repair_unfollowed(proc, prev, None, orig_of, index);
        }
        (self.appended, self.chains)
    }

    /// Repairs every successor edge of `copy` that targets a superblock
    /// interior, except the edge to `followed` (the walk continues there
    /// and the next append retargets it).
    fn repair_unfollowed(
        &mut self,
        proc: &mut Proc,
        copy: BlockId,
        followed: Option<BlockId>,
        orig_of: &mut Vec<BlockId>,
        index: &SbIndex,
    ) {
        let targets = proc.block(copy).term.successors();
        for t in targets {
            if Some(t) == followed || t.index() >= self.snapshot.len() {
                continue;
            }
            if index.headed_by(t).is_some() {
                continue;
            }
            let Some((sbi, pos)) = index.loc.get(t.index()).copied().flatten() else {
                continue;
            };
            let suffix = &index.blocks[sbi as usize][pos as usize..];
            if suffix.is_empty() || suffix.len() > MAX_REPAIR_CHAIN {
                continue; // the fixup splitter handles the residue
            }
            // Tail-duplicate the suffix: clone each block with its
            // snapshot terminator, chain internal edges pairwise.
            let mut chain: Vec<BlockId> = Vec::with_capacity(suffix.len());
            let mut chain_orig: Vec<BlockId> = Vec::with_capacity(suffix.len());
            for &b in suffix {
                let term = self.snapshot[b.index()].clone();
                let instrs = proc.block(b).instrs.clone();
                let c = proc.push_block(Block::new(instrs, term));
                orig_of.push(orig_of[b.index()]);
                chain.push(c);
                chain_orig.push(orig_of[b.index()]);
            }
            for k in 0..chain.len() - 1 {
                let next_src = suffix[k + 1];
                let next_copy = chain[k + 1];
                proc.block_mut(chain[k])
                    .term
                    .retarget(|x| if x == next_src { next_copy } else { x });
            }
            let chain_head = chain[0];
            proc.block_mut(copy)
                .term
                .retarget(|x| if x == t { chain_head } else { x });
            self.appended += chain.len() as u32;
            self.chains.push(SbBuild { blocks: chain, orig: chain_orig });
        }
    }
}

/// Outcome statistics of enlarging one superblock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnlargeStats {
    /// Blocks appended to the superblock plus blocks in compensation
    /// chains.
    pub appended: u32,
    /// Loop-head crossings consumed (path) or unroll bodies added (edge).
    pub loop_crossings: u32,
    /// True when enlargement was skipped by the completion-frequency check.
    pub skipped_low_completion: bool,
}

/// Path-based enlargement (Figure 2), `P4`/`P4e`.
///
/// Grows `sb` by most-likely path successors. Stops at: exhausted path
/// frequency, the instruction-count cap, a multi-block non-loop superblock
/// head, or when the `unroll` loop-head-crossing budget is consumed
/// (singleton non-loop heads are transparent — this is how the unified
/// mechanism subsumes branch target expansion). Under `restrained` (P4e),
/// superblocks that are not themselves superblock loops are not enlarged at
/// all ("enlargement uses only tail-duplicated code").
#[allow(clippy::too_many_arguments)]
pub fn enlarge_path(
    proc: &mut Proc,
    pid: ProcId,
    sb: &mut SbBuild,
    sb_idx_self: u32,
    index: &SbIndex,
    snapshot: &[Terminator],
    profile: &PathProfile,
    orig_of: &mut Vec<BlockId>,
    unroll: u32,
    restrained: bool,
    config: &FormConfig,
) -> (EnlargeStats, Vec<SbBuild>) {
    let mut stats = EnlargeStats::default();
    let self_is_loop = index.is_loopish[sb_idx_self as usize];

    // Enlarge only superblocks that complete with high frequency: the
    // exact completion frequency is f(trace)/f(head) (longest-suffix rule
    // for long traces).
    let head_freq = profile.block_freq(pid, sb.orig[0]);
    if head_freq == 0 {
        return (stats, Vec::new());
    }
    let q = profile.trim_to_depth(proc, &sb.orig);
    let completion = profile.freq(pid, q) as f64 / head_freq as f64;
    if completion < config.completion_threshold {
        stats.skipped_low_completion = true;
        return (stats, Vec::new());
    }

    let mut grower = Grower::new(snapshot, sb);
    let mut crossings = 0u32;
    loop {
        if sb.static_size(proc) >= config.max_superblock_instrs {
            break;
        }
        // Most-likely path successor over the current last block's CFG
        // successors, queried on original ids.
        let last = sb.last();
        let succs = proc.block(last).term.successors();
        let mut best: Option<(BlockId, u64)> = None;
        let mut buf: Vec<BlockId> = Vec::with_capacity(sb.orig.len() + 1);
        for &s in &succs {
            buf.clear();
            buf.extend_from_slice(&sb.orig);
            buf.push(orig_of[s.index()]);
            let q = profile.trim_to_depth(proc, &buf);
            let f = profile.freq(pid, q);
            if f == 0 {
                continue;
            }
            best = Some(match best {
                None => (s, f),
                Some((bb, bf)) => {
                    if f > bf || (f == bf && s < bb) {
                        (s, f)
                    } else {
                        (bb, bf)
                    }
                }
            });
        }
        let Some((s, _)) = best else { break };

        if let Some(target_idx) = index.headed_by(s) {
            let t = target_idx as usize;
            if index.is_chain[t] {
                // Tail-duplicated compensation code: absorbable under
                // every variant ("enlargement uses only tail-duplicated
                // code" is exactly what P4e permits for non-loop
                // superblocks).
            } else if index.is_loopish[t] {
                // A superblock-loop head: P4e non-loop candidates stop at
                // any real head; otherwise consume the unroll budget
                // (Figure 2's `c++ >= 4`: the walk may cross `unroll` loop
                // heads and stops at the next one).
                if restrained && !self_is_loop {
                    break;
                }
                if crossings >= unroll {
                    break;
                }
                crossings += 1;
                stats.loop_crossings += 1;
            } else if restrained && (index.len[t] > 1 || !self_is_loop) {
                // P4e limits code expansion: stop at real superblock
                // heads. P4 crosses any head — per the paper's §4, a
                // superblock "is enlarged until it contains at most 4
                // superblock loops" — the unified branch target expansion.
                break;
            }
        }
        grower.append(proc, sb, s, orig_of, index);
    }
    let (appended, chains) = grower.finish(proc, orig_of, index);
    stats.appended = appended;
    (stats, chains)
}

/// Edge-based enlargement: the classical trio, `M4`/`M16`.
#[allow(clippy::too_many_arguments)]
pub fn enlarge_edge(
    proc: &mut Proc,
    pid: ProcId,
    sb: &mut SbBuild,
    sb_idx_self: u32,
    index: &SbIndex,
    snapshot: &[Terminator],
    sbs_snapshot: &[Vec<BlockId>],
    edge: &EdgeProfile,
    orig_of: &mut Vec<BlockId>,
    unroll: u32,
    config: &FormConfig,
) -> (EnlargeStats, Vec<SbBuild>) {
    let mut stats = EnlargeStats::default();
    let self_is_loop = index.is_loop[sb_idx_self as usize];
    let mut grower = Grower::new(snapshot, sb);

    if self_is_loop {
        // Average trip count per entry: f(head) / (f(head) - f(back edge)).
        let head_f = edge.block_freq(pid, sb.orig[0]) as f64;
        let back_f =
            edge.edge_freq(pid, *sb.orig.last().expect("non-empty"), sb.orig[0]) as f64;
        if head_f <= 0.0 {
            return (stats, Vec::new());
        }
        let entries = (head_f - back_f).max(1.0);
        let avg_trip = head_f / entries;
        // High-trip loops unroll by the factor; low-trip loops "peel" the
        // expected iteration count (realized as unrolling by that count).
        let bodies = if avg_trip >= config.peel_max_avg {
            unroll
        } else {
            (avg_trip.round() as u32).clamp(1, unroll)
        };
        let body: Vec<BlockId> = sb.blocks.clone();
        'outer: for _ in 1..bodies {
            for &b in &body {
                if sb.static_size(proc) >= config.max_superblock_instrs {
                    break 'outer;
                }
                // Follow the loop path: the current last block must have an
                // edge to a block copying the same original as `b`.
                let last = sb.last();
                let want = orig_of[b.index()];
                let src = proc
                    .block(last)
                    .term
                    .successors()
                    .into_iter()
                    .find(|&t| orig_of[t.index()] == want);
                let Some(src) = src else { break 'outer };
                grower.append(proc, sb, src, orig_of, index);
            }
            stats.loop_crossings += 1;
        }
    } else {
        // Branch target expansion: while the last branch likely jumps to
        // the head of another non-loop superblock, append that superblock's
        // blocks.
        loop {
            if sb.static_size(proc) >= config.max_superblock_instrs {
                break;
            }
            let last = sb.last();
            let last_orig = *sb.orig.last().expect("non-empty");
            let bf = edge.block_freq(pid, last_orig);
            if bf == 0 {
                break;
            }
            // Most likely successor by original edge frequency.
            let mut best: Option<(BlockId, u64)> = None;
            for s in proc.block(last).term.successors() {
                let f = edge.edge_freq(pid, last_orig, orig_of[s.index()]);
                if f == 0 {
                    continue;
                }
                best = Some(match best {
                    None => (s, f),
                    Some((bb, ff)) => {
                        if f > ff || (f == ff && s < bb) {
                            (s, f)
                        } else {
                            (bb, ff)
                        }
                    }
                });
            }
            let Some((s, f)) = best else { break };
            if (f as f64) < config.likely_threshold * (bf as f64) {
                break;
            }
            let Some(target_idx) = index.headed_by(s) else { break };
            let t = target_idx as usize;
            if index.is_loop[t] || target_idx == sb_idx_self {
                break;
            }
            // Append the entire target superblock (as it was before any
            // enlargement, to bound growth).
            let target_blocks = &sbs_snapshot[t];
            let mut ok = true;
            for &tb in target_blocks {
                if sb.static_size(proc) >= config.max_superblock_instrs {
                    ok = false;
                    break;
                }
                let last = sb.last();
                let want = orig_of[tb.index()];
                let src = proc
                    .block(last)
                    .term
                    .successors()
                    .into_iter()
                    .find(|&x| orig_of[x.index()] == want);
                let Some(src) = src else {
                    ok = false;
                    break;
                };
                grower.append(proc, sb, src, orig_of, index);
            }
            if !ok {
                break;
            }
        }
    }
    let (appended, chains) = grower.finish(proc, orig_of, index);
    stats.appended = appended;
    (stats, chains)
}

/// Captures the terminators of all blocks — the copy-source snapshot for
/// enlargement. Call after tail duplication, before any enlargement.
pub fn snapshot_terms(proc: &Proc) -> Vec<Terminator> {
    proc.blocks.iter().map(|b| b.term.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;
    use pps_ir::{AluOp, Operand, Program};

    /// Counted loop with body blocks head -> body -> latch(-> head|exit).
    fn loop3(n: i64) -> (Program, [BlockId; 4]) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.nop();
        f.jump(body);
        f.switch_to(body);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.out(i);
        f.ret(None);
        let main = f.finish();
        (pb.finish(main), [head, body, latch, exit])
    }

    fn profiles(p: &Program) -> (EdgeProfile, PathProfile) {
        let mut ep = pps_profile::EdgeProfiler::new(p);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[], &mut ep)
            .unwrap();
        let mut pp = pps_profile::PathProfiler::new(p, 15);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[], &mut pp)
            .unwrap();
        (ep.finish(), pp.finish())
    }

    fn identity_orig(p: &Program) -> Vec<BlockId> {
        p.proc(p.entry).block_ids().collect()
    }

    #[test]
    fn edge_unroll_appends_bodies() {
        let (mut p, [head, body, latch, exit]) = loop3(100);
        let before = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        let (ep, _) = profiles(&p);
        let pid = p.entry;
        let mut orig_of = identity_orig(&p);
        let mut sbs = vec![
            SbBuild::from_original(vec![head, body, latch]),
            SbBuild::from_original(vec![BlockId::new(0)]),
            SbBuild::from_original(vec![exit]),
        ];
        let config = FormConfig::default();
        let no_chains = vec![false; sbs.len()];
        let an = ProcAnalysis::compute(p.proc(pid));
        let index = SbIndex::build(p.proc(pid), pid, &sbs, &no_chains, &ep, &an, &config);
        assert!(index.is_loop[0], "loop classified");
        assert!(!index.is_loop[1]);
        let snap = snapshot_terms(p.proc(pid));
        let snapshot: Vec<Vec<BlockId>> = sbs.iter().map(|s| s.blocks.clone()).collect();
        let proc = p.proc_mut(pid);
        let (stats, chains) = enlarge_edge(
            proc, pid, &mut sbs[0], 0, &index, &snap, &snapshot, &ep, &mut orig_of, 4, &config,
        );
        // Unroll factor 4: three extra bodies of 3 blocks each; the walk
        // ends cleanly at the loop head, so no compensation chains.
        assert_eq!(stats.appended, 9);
        assert!(chains.is_empty());
        assert_eq!(sbs[0].blocks.len(), 12);
        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn edge_low_trip_loop_peels() {
        // Average trip count 5 (< peel_max_avg 8): with a generous unroll
        // limit of 8, peeling appends bodies to match the trip count (5),
        // not the limit.
        let (mut p, [head, body, latch, exit]) = loop3(5);
        let (ep, _) = profiles(&p);
        let pid = p.entry;
        let mut orig_of = identity_orig(&p);
        let mut sbs = vec![
            SbBuild::from_original(vec![head, body, latch]),
            SbBuild::from_original(vec![BlockId::new(0)]),
            SbBuild::from_original(vec![exit]),
        ];
        let config = FormConfig::default();
        let no_chains = vec![false; sbs.len()];
        let an = ProcAnalysis::compute(p.proc(pid));
        let index = SbIndex::build(p.proc(pid), pid, &sbs, &no_chains, &ep, &an, &config);
        assert!(index.is_loop[0], "trip-5 loop is likely (4/5 back-edge)");
        let snap = snapshot_terms(p.proc(pid));
        let snapshot: Vec<Vec<BlockId>> = sbs.iter().map(|s| s.blocks.clone()).collect();
        let (stats, _chains) = enlarge_edge(
            p.proc_mut(pid), pid, &mut sbs[0], 0, &index, &snap, &snapshot, &ep,
            &mut orig_of, 8, &config,
        );
        assert_eq!(stats.appended, 12, "peel to 5 bodies total");
        verify_program(&p).unwrap();
    }

    #[test]
    fn path_enlarge_unrolls_dominant_loop() {
        let (mut p, [head, body, latch, exit]) = loop3(100);
        let before = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        let (ep, pp) = profiles(&p);
        let pid = p.entry;
        let mut orig_of = identity_orig(&p);
        let mut sbs = vec![
            SbBuild::from_original(vec![head, body, latch]),
            SbBuild::from_original(vec![BlockId::new(0)]),
            SbBuild::from_original(vec![exit]),
        ];
        let config = FormConfig::default();
        let no_chains = vec![false; sbs.len()];
        let an = ProcAnalysis::compute(p.proc(pid));
        let index = SbIndex::build(p.proc(pid), pid, &sbs, &no_chains, &ep, &an, &config);
        let snap = snapshot_terms(p.proc(pid));
        let (stats, chains) = enlarge_path(
            p.proc_mut(pid), pid, &mut sbs[0], 0, &index, &snap, &pp, &mut orig_of,
            4, false, &config,
        );
        // Figure 2 budget: 4 head crossings consumed, 4 extra bodies of 3
        // blocks appended (5 bodies total incl. the original).
        assert_eq!(stats.loop_crossings, 4);
        assert_eq!(stats.appended, 12);
        assert!(chains.is_empty(), "uniform loop: no divergence, no chains");
        // The final latch copy branches back to the original head: no side
        // entrance, nothing rolled back.
        let last = sbs[0].last();
        assert!(p.proc(pid).block(last).term.successors().contains(&head));
        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn path_enlarge_skips_low_completion() {
        // Deliberately bad trace [head, rare] where rare runs 10% of
        // iterations: completion check must refuse to enlarge.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let rare = f.new_block();
        let common = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 10i64);
        f.alu(AluOp::CmpEq, c, m, 0i64);
        f.branch(c, rare, common);
        f.switch_to(rare);
        f.jump(latch);
        f.switch_to(common);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(200));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let (ep, pp) = profiles(&p);
        let pid = p.entry;
        let mut orig_of = identity_orig(&p);
        let mut sbs = vec![
            SbBuild::from_original(vec![head, rare]),
            SbBuild::from_original(vec![BlockId::new(0)]),
            SbBuild::from_original(vec![common]),
            SbBuild::from_original(vec![latch]),
            SbBuild::from_original(vec![exit]),
        ];
        let config = FormConfig::default();
        let no_chains = vec![false; sbs.len()];
        let an = ProcAnalysis::compute(p.proc(pid));
        let index = SbIndex::build(p.proc(pid), pid, &sbs, &no_chains, &ep, &an, &config);
        let snap = snapshot_terms(p.proc(pid));
        let (stats, chains) = enlarge_path(
            p.proc_mut(pid), pid, &mut sbs[0], 0, &index, &snap, &pp, &mut orig_of,
            4, false, &config,
        );
        assert!(stats.skipped_low_completion);
        assert_eq!(stats.appended, 0);
        assert!(chains.is_empty());
    }

    #[test]
    fn p4e_skips_non_loop_superblocks() {
        let (mut p, [head, body, latch, exit]) = loop3(100);
        let (ep, pp) = profiles(&p);
        let pid = p.entry;
        let mut orig_of = identity_orig(&p);
        // Entry superblock is not a loop.
        let mut sbs = vec![
            SbBuild::from_original(vec![BlockId::new(0)]),
            SbBuild::from_original(vec![head, body, latch]),
            SbBuild::from_original(vec![exit]),
        ];
        let config = FormConfig::default();
        let no_chains = vec![false; sbs.len()];
        let an = ProcAnalysis::compute(p.proc(pid));
        let index = SbIndex::build(p.proc(pid), pid, &sbs, &no_chains, &ep, &an, &config);
        let snap = snapshot_terms(p.proc(pid));
        let (stats, _chains) = enlarge_path(
            p.proc_mut(pid), pid, &mut sbs[0], 0, &index, &snap, &pp, &mut orig_of,
            4, true, &config,
        );
        assert_eq!(stats.appended, 0, "P4e: non-loop superblock untouched");
    }

    #[test]
    fn size_cap_stop_gets_compensation_chain() {
        let (mut p, [head, body, latch, exit]) = loop3(1000);
        let before = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        let (ep, pp) = profiles(&p);
        let pid = p.entry;
        let mut orig_of = identity_orig(&p);
        let mut sbs = vec![
            SbBuild::from_original(vec![head, body, latch]),
            SbBuild::from_original(vec![BlockId::new(0)]),
            SbBuild::from_original(vec![exit]),
        ];
        // Cap mid-body: initial 6 instrs, each body adds 6; a cap of 14
        // stops inside the second appended body.
        let config = FormConfig { max_superblock_instrs: 14, ..Default::default() };
        let no_chains = vec![false; sbs.len()];
        let an = ProcAnalysis::compute(p.proc(pid));
        let index = SbIndex::build(p.proc(pid), pid, &sbs, &no_chains, &ep, &an, &config);
        let snap = snapshot_terms(p.proc(pid));
        let (stats, chains) = enlarge_path(
            p.proc_mut(pid), pid, &mut sbs[0], 0, &index, &snap, &pp, &mut orig_of,
            64, false, &config,
        );
        // The walk stopped mid-body; the final copy's dangling edge into
        // the loop interior is repaired with a tail-duplicate chain, so no
        // side entrance exists anywhere.
        assert!(stats.appended > 0);
        assert!(!chains.is_empty(), "mid-body stop needs a compensation chain");
        let mut all = sbs.clone();
        all.extend(chains);
        let post_cfg = pps_ir::analysis::Cfg::compute(p.proc(pid));
        let (splits, _) = crate::fixup::split_side_entrances(&post_cfg, &mut all);
        assert_eq!(splits, 0, "repair chains leave the partition clean");
        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(before.output, after.output);
        let _ = body;
    }
}
