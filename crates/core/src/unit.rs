//! Per-procedure compilation units.
//!
//! A [`CompileUnit`] is one procedure detached from its [`Program`]
//! together with its memoized analyses ([`UnitCache`]). Formation passes
//! operate on the unit: mutators go through [`CompileUnit::proc_mut`] (the
//! procedure's mutation generation invalidates the cache automatically),
//! and queries go through [`CompileUnit::analysis`] / [`CompileUnit::cfg`],
//! which recompute only when the body has actually changed since the last
//! query.
//!
//! A unit owns everything it touches, so it is `Send`: the parallel
//! formation path ([`crate::pipeline::form_program_parallel`]) detaches
//! every procedure, fans the units out across scoped worker threads
//! (profiles shared read-only), and reattaches them in procedure order.

use crate::hash::ArtifactKey;
use pps_ir::analysis::{Cfg, ProcAnalysis};
use pps_ir::cache::UnitCache;
use pps_ir::{Proc, ProcId, Program};
use std::sync::Arc;

/// One procedure checked out of a program for formation, carrying its
/// analysis memos and, when the caller works content-addressed, the
/// [`ArtifactKey`] naming the artifact this unit is being compiled for.
#[derive(Debug)]
pub struct CompileUnit {
    pid: ProcId,
    proc: Proc,
    cache: UnitCache,
    key: Option<ArtifactKey>,
}

// The parallel experiment engine moves units across worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CompileUnit>();
};

impl CompileUnit {
    /// Checks procedure `pid` out of `program`, leaving an empty shell in
    /// its slot. The caller must [`reattach`](Self::reattach) (or restore a
    /// snapshot) before the program is executed or verified again.
    pub fn detach(program: &mut Program, pid: ProcId) -> CompileUnit {
        let proc = std::mem::replace(program.proc_mut(pid), Proc::new(String::new(), 0));
        CompileUnit { pid, proc, cache: UnitCache::new(), key: None }
    }

    /// A unit over an owned procedure (no program involved).
    pub fn from_proc(pid: ProcId, proc: Proc) -> CompileUnit {
        CompileUnit { pid, proc, cache: UnitCache::new(), key: None }
    }

    /// Attaches the content address of the artifact this unit belongs to.
    /// The key rides along through detach/formation/reattach so every
    /// layer (pipeline, cache, shard router) agrees on the identity
    /// without recomputing it.
    pub fn set_key(&mut self, key: ArtifactKey) {
        self.key = Some(key);
    }

    /// Builder-style [`set_key`](Self::set_key).
    pub fn with_key(mut self, key: ArtifactKey) -> CompileUnit {
        self.key = Some(key);
        self
    }

    /// The attached artifact key, if any.
    pub fn key(&self) -> Option<&ArtifactKey> {
        self.key.as_ref()
    }

    /// The canonical structural hash of the *current* body, memoized per
    /// mutation generation. Unlike the generation nonce this survives
    /// serialize/deserialize and process restarts, so it is the
    /// per-procedure leg of cross-request identity.
    pub fn structural_hash(&mut self) -> u64 {
        self.cache.structural_hash(&self.proc)
    }

    /// Returns the procedure to its slot in `program`.
    ///
    /// # Panics
    /// Panics if `program` does not have the unit's procedure id.
    pub fn reattach(self, program: &mut Program) {
        *program.proc_mut(self.pid) = self.proc;
    }

    /// Consumes the unit, returning the owned procedure.
    pub fn into_proc(self) -> Proc {
        self.proc
    }

    /// The procedure's id in its program.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Shared access to the procedure.
    pub fn proc(&self) -> &Proc {
        &self.proc
    }

    /// Mutable access to the procedure. Mutation bumps the procedure's
    /// generation, which invalidates the unit's cached analyses on the
    /// next query — no manual invalidation needed.
    pub fn proc_mut(&mut self) -> &mut Proc {
        &mut self.proc
    }

    /// The memoized CFG of the current body.
    pub fn cfg(&mut self) -> Arc<Cfg> {
        self.cache.cfg(&self.proc)
    }

    /// The memoized analysis bundle (CFG + dominators + loops) of the
    /// current body.
    pub fn analysis(&mut self) -> Arc<ProcAnalysis> {
        self.cache.analysis(&self.proc)
    }

    /// `(hits, misses)` of the unit's analysis cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::instr::Terminator;
    use pps_ir::Block;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let next = f.new_block();
        f.jump(next);
        f.switch_to(next);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn detach_reattach_round_trips() {
        let mut p = program();
        let original = p.proc(p.entry).clone();
        let unit = { let entry = p.entry; CompileUnit::detach(&mut p, entry) };
        assert_eq!(p.proc(p.entry).blocks.len(), 0, "shell left behind");
        unit.reattach(&mut p);
        assert_eq!(*p.proc(p.entry), original);
    }

    #[test]
    fn mutation_through_unit_invalidates_cache() {
        let mut p = program();
        let mut unit = { let entry = p.entry; CompileUnit::detach(&mut p, entry) };
        let a1 = unit.analysis();
        let a2 = unit.analysis();
        assert!(Arc::ptr_eq(&a1, &a2));
        unit.proc_mut()
            .push_block(Block::new(vec![], Terminator::Return { value: None }));
        let a3 = unit.analysis();
        assert_eq!(a3.cfg.len(), 3);
        assert_eq!(a1.cfg.len(), 2, "held Arc still describes the old body");
        let (hits, misses) = unit.cache_stats();
        assert_eq!((hits, misses), (1, 2));
        unit.reattach(&mut p);
    }

    #[test]
    fn key_rides_along_and_structural_hash_tracks_content() {
        let mut p = program();
        let key = ArtifactKey::new(1, 2, "P4", 3);
        let mut unit =
            { let entry = p.entry; CompileUnit::detach(&mut p, entry) }.with_key(key.clone());
        assert_eq!(unit.key(), Some(&key));
        let h1 = unit.structural_hash();
        let h2 = unit.structural_hash();
        assert_eq!(h1, h2, "memo hit returns the same hash");
        unit.proc_mut()
            .push_block(Block::new(vec![], Terminator::Return { value: None }));
        assert_ne!(unit.structural_hash(), h1, "mutation changes content identity");
        assert_eq!(unit.key(), Some(&key), "key survives mutation");
        unit.reattach(&mut p);
    }

    #[test]
    fn units_move_across_threads() {
        let mut p = program();
        let unit = { let entry = p.entry; CompileUnit::detach(&mut p, entry) };
        let unit = std::thread::spawn(move || {
            let mut unit = unit;
            let a = unit.analysis();
            assert_eq!(a.cfg.len(), 2);
            unit
        })
        .join()
        .unwrap();
        unit.reattach(&mut p);
    }
}
