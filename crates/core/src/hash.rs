//! Content-addressed artifact identity.
//!
//! Every layer of the stack used to invent its own hash arithmetic (the
//! serve frame checksum, the harness fault seed, the loadgen retry
//! jitter) and its own notion of "same input" (the process-local mutation
//! generation nonce). This module unifies both:
//!
//! - The FNV-1a / splitmix64 primitives live in [`pps_ir::hash`] (the
//!   lowest crate in the dependency order) and are re-exported here so
//!   serving-stack code has one import path.
//! - [`ArtifactKey`] names a compile artifact by *content*: the canonical
//!   program hash ([`pps_ir::hash::program_hash`]), the canonical profile
//!   hash ([`pps_profile::hash`]), the formation scheme, and the machine
//!   model ([`machine_hash`]). Two requests with the same key are
//!   guaranteed byte-identical replies (the pipeline is deterministic in
//!   exactly these inputs), which is what makes cross-request caching and
//!   consistent-hash sharding sound.
//!
//! The generation nonce keeps its job — cheap *in-process* invalidation
//! inside [`pps_ir::UnitCache`] — but it no longer leaks into anything
//! that outlives the process: the durable identity is the ArtifactKey.

pub use pps_ir::hash::{fnv1a32, fnv1a64, splitmix64, Fold};

use pps_machine::{LatencyModel, MachineConfig};
use std::fmt;

/// Canonical hash of a machine model. Folds every field that affects
/// scheduling or timing, so any config change yields a new artifact
/// identity.
pub fn machine_hash(m: &MachineConfig) -> u64 {
    let mut f = Fold::new();
    f.u64(m.issue_width as u64)
        .u64(m.control_per_cycle as u64)
        .u32(m.num_registers)
        .tag(match m.latency {
            LatencyModel::Unit => 0,
            LatencyModel::Realistic => 1,
        })
        .u64(m.icache.size_bytes as u64)
        .u64(m.icache.line_bytes as u64)
        .u64(m.icache.miss_penalty)
        .u64(m.icache.instr_bytes as u64);
    f.finish()
}

/// The content address of one compile artifact.
///
/// A key is stable across processes and machines: every component is a
/// canonical content hash (or the scheme's canonical name), never a
/// process-local nonce. The serving stack keys its [`CompileCache`] on
/// it, and the shard router places it on the consistent-hash ring via
/// [`ArtifactKey::route_hash`].
///
/// [`CompileCache`]: https://docs.rs/pps-serve
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey {
    /// Canonical structural hash of the program.
    pub program_hash: u64,
    /// Canonical hash of the training profile(s).
    pub profile_hash: u64,
    /// Formation scheme name (`BB`, `M4`, `P4`, `P4e`, …).
    pub scheme: String,
    /// Canonical hash of the machine model.
    pub machine_hash: u64,
}

impl ArtifactKey {
    /// Builds a key from already-computed component hashes.
    pub fn new(
        program_hash: u64,
        profile_hash: u64,
        scheme: impl Into<String>,
        machine_hash: u64,
    ) -> Self {
        ArtifactKey { program_hash, profile_hash, scheme: scheme.into(), machine_hash }
    }

    /// One 64-bit digest of the whole key: the value consistent-hash
    /// routing and cache bucketing use. Folds all four components
    /// order-sensitively.
    pub fn route_hash(&self) -> u64 {
        let mut f = Fold::new();
        f.u64(self.program_hash)
            .u64(self.profile_hash)
            .str(&self.scheme)
            .u64(self.machine_hash);
        f.finish()
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}-{:016x}-{}-{:016x}",
            self.program_hash, self.profile_hash, self.scheme, self.machine_hash
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_machine::ICacheConfig;

    #[test]
    fn machine_hash_covers_every_field() {
        let base = MachineConfig::paper();
        let h = machine_hash(&base);
        let variants = [
            MachineConfig { issue_width: 4, ..base },
            MachineConfig { control_per_cycle: 2, ..base },
            MachineConfig { num_registers: 64, ..base },
            MachineConfig { latency: LatencyModel::Realistic, ..base },
            MachineConfig {
                icache: ICacheConfig { size_bytes: 64 * 1024, ..base.icache },
                ..base
            },
            MachineConfig {
                icache: ICacheConfig { miss_penalty: 12, ..base.icache },
                ..base
            },
        ];
        for v in &variants {
            assert_ne!(machine_hash(v), h, "field change must change the hash: {v:?}");
        }
        assert_eq!(machine_hash(&base), h, "hash is deterministic");
    }

    #[test]
    fn route_hash_distinguishes_components() {
        let k = ArtifactKey::new(1, 2, "P4", 3);
        assert_ne!(k.route_hash(), ArtifactKey::new(2, 1, "P4", 3).route_hash());
        assert_ne!(k.route_hash(), ArtifactKey::new(1, 2, "P4e", 3).route_hash());
        assert_ne!(k.route_hash(), ArtifactKey::new(1, 2, "P4", 4).route_hash());
        assert_eq!(k.route_hash(), k.clone().route_hash());
    }

    #[test]
    fn display_is_compact_and_ordered() {
        let k = ArtifactKey::new(0xAB, 0xCD, "M16", 0xEF);
        let s = k.to_string();
        assert!(s.starts_with("00000000000000ab-00000000000000cd-M16-"));
    }
}
