//! Chrome trace-event model and exporter.
//!
//! Events are exported in the Chrome trace-event JSON format (the
//! `{"traceEvents": [...]}` object form), which loads directly in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`. Spans are complete
//! (`ph:"X"`) events carrying a microsecond timestamp and duration;
//! decision events and log lines are instant (`ph:"i"`) events. Nesting
//! needs no explicit parent links: complete events on the same pid/tid
//! nest by time interval.

use crate::json;

/// One structured argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl ArgValue {
    fn write_json(&self, out: &mut String) {
        match self {
            ArgValue::Int(v) => out.push_str(&v.to_string()),
            ArgValue::UInt(v) => out.push_str(&v.to_string()),
            ArgValue::Float(v) => out.push_str(&json::number(*v)),
            ArgValue::Str(s) => json::escape_into(out, s),
            ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::Int(v.into())
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(v.into())
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One trace event, already stamped.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (span or decision name).
    pub name: String,
    /// Category (`span`, `decision`, `guard`, `log`, ...).
    pub cat: String,
    /// Chrome phase: `'X'` complete, `'i'` instant.
    pub ph: char,
    /// Timestamp in microseconds since the recorder started.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: Option<f64>,
    /// Thread id (dense, assigned per recorder).
    pub tid: u64,
    /// Structured arguments.
    pub args: Vec<(String, ArgValue)>,
}

/// Renders `events` as a Chrome trace-event JSON document.
pub fn export_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        json::escape_into(&mut out, &e.name);
        out.push_str(",\"cat\":");
        json::escape_into(&mut out, &e.cat);
        out.push_str(",\"ph\":\"");
        out.push(e.ph);
        out.push_str("\",\"ts\":");
        out.push_str(&json::number(e.ts_us));
        if let Some(dur) = e.dur_us {
            out.push_str(",\"dur\":");
            out.push_str(&json::number(dur));
        }
        if e.ph == 'i' {
            // Instant-event scope: thread.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::escape_into(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn export_is_valid_chrome_json() {
        let events = vec![
            TraceEvent {
                name: "outer".into(),
                cat: "span".into(),
                ph: 'X',
                ts_us: 0.0,
                dur_us: Some(100.5),
                tid: 1,
                args: vec![("bench".into(), ArgValue::Str("wc".into()))],
            },
            TraceEvent {
                name: "pick".into(),
                cat: "decision".into(),
                ph: 'i',
                ts_us: 10.0,
                dur_us: None,
                tid: 1,
                args: vec![
                    ("weight".into(), ArgValue::UInt(42)),
                    ("ok".into(), ArgValue::Bool(true)),
                ],
            },
        ];
        let doc = parse(&export_chrome(&events)).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("outer"));
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[0].get("dur").unwrap().as_num(), Some(100.5));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(evs[1].get("args").unwrap().get("weight").unwrap().as_num(), Some(42.0));
        // Every event has the fields Perfetto needs.
        for e in evs {
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
    }
}
