//! Counter/histogram metrics registry with labeled series and a
//! stable-schema JSON export.
//!
//! Keys are `(name, sorted labels)`; the export orders series
//! deterministically (BTreeMap iteration), so diffing two metrics files
//! from the same workload is meaningful.

use crate::json;
use std::collections::BTreeMap;

/// Identity of one metric series: a name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated by convention (`form.superblocks`).
    pub name: String,
    /// Label pairs, kept sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key with the labels sorted.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

/// Streaming summary of one histogram series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Histogram {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds another series' summary into this one. Merging is commutative
    /// except for `sum`, whose float additions are order-sensitive —
    /// callers wanting reproducible output must merge in a deterministic
    /// order.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

/// The registry: every counter and histogram series recorded so far.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to a counter series.
    pub fn add(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Records one histogram sample.
    pub fn record(&mut self, key: MetricKey, value: f64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Folds every series of `other` into this registry: counters add,
    /// histogram summaries [`Histogram::merge`]. Used by the parallel
    /// experiment engine to combine per-worker registries; merging workers
    /// in a deterministic order makes the combined export reproducible.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(h);
        }
    }

    /// Sum of a counter's values across every label combination.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// All counter series, in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// All histogram series, in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Total number of series (counters + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.histograms.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Exports the registry as stable-schema JSON:
    ///
    /// ```json
    /// {
    ///   "schema": "pps-metrics",
    ///   "version": 1,
    ///   "counters":   [{"name": "...", "labels": {...}, "value": 1}],
    ///   "histograms": [{"name": "...", "labels": {...},
    ///                   "count": 1, "sum": 2.0, "min": 2.0, "max": 2.0, "mean": 2.0}]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.len() * 96);
        out.push_str("{\"schema\":\"pps-metrics\",\"version\":1,\n\"counters\":[");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json::escape_into(&mut out, &key.name);
            write_labels(&mut out, &key.labels);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push('}');
        }
        out.push_str("\n],\n\"histograms\":[");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json::escape_into(&mut out, &key.name);
            write_labels(&mut out, &key.labels);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                h.count,
                json::number(h.sum),
                json::number(if h.count == 0 { 0.0 } else { h.min }),
                json::number(if h.count == 0 { 0.0 } else { h.max }),
                json::number(h.mean()),
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)]) {
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(out, k);
        out.push(':');
        json::escape_into(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_merge_by_key() {
        let mut r = MetricsRegistry::default();
        r.add(MetricKey::new("x", &[("b", "2"), ("a", "1")]), 3);
        r.add(MetricKey::new("x", &[("a", "1"), ("b", "2")]), 4);
        r.add(MetricKey::new("x", &[("a", "other")]), 1);
        assert_eq!(r.counter_total("x"), 8);
        assert_eq!(r.counters().count(), 2, "label order must not split series");
    }

    #[test]
    fn histogram_summary() {
        let mut r = MetricsRegistry::default();
        let key = MetricKey::new("h", &[]);
        r.record(key.clone(), 2.0);
        r.record(key.clone(), 6.0);
        let (_, h) = r.histograms().next().unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn export_schema_is_stable_and_parseable() {
        let mut r = MetricsRegistry::default();
        r.add(MetricKey::new("c", &[("bench", "wc")]), 7);
        r.record(MetricKey::new("h", &[]), 1.5);
        let doc = parse(&r.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("pps-metrics"));
        assert_eq!(doc.get("version").unwrap().as_num(), Some(1.0));
        let cs = doc.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].get("value").unwrap().as_num(), Some(7.0));
        assert_eq!(
            cs[0].get("labels").unwrap().get("bench").unwrap().as_str(),
            Some("wc")
        );
        let hs = doc.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(hs[0].get("count").unwrap().as_num(), Some(1.0));
        assert_eq!(hs[0].get("mean").unwrap().as_num(), Some(1.5));
    }

    #[test]
    fn empty_export_still_has_all_keys() {
        let doc = parse(&MetricsRegistry::default().to_json()).unwrap();
        assert!(doc.get("counters").unwrap().as_arr().unwrap().is_empty());
        assert!(doc.get("histograms").unwrap().as_arr().unwrap().is_empty());
    }
}
