//! Counter/histogram metrics registry with labeled series and a
//! stable-schema JSON export.
//!
//! Keys are `(name, sorted labels)`; the export orders series
//! deterministically (BTreeMap iteration), so diffing two metrics files
//! from the same workload is meaningful.

use crate::json;
use std::collections::BTreeMap;

/// Identity of one metric series: a name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated by convention (`form.superblocks`).
    pub name: String,
    /// Label pairs, kept sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key with the labels sorted.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

/// Finite log-scaled bucket upper bounds; one overflow bucket follows.
///
/// Bound `i` is `0.001 * 2^i` — from 1µs-scale up to ~3.4e7 — so one
/// bucket layout serves latencies in milliseconds, queue depths, and slot
/// occupancies alike. The bounds are exact binary multiples of the same
/// base, so bucketing is deterministic across platforms.
pub const FINITE_BUCKETS: usize = 36;

/// Total bucket count: the finite bounds plus the overflow (`+Inf`) bucket.
pub const BUCKET_COUNT: usize = FINITE_BUCKETS + 1;

/// Upper bound of finite bucket `i` (callers never index past
/// [`FINITE_BUCKETS`]; the last bucket's bound is `+Inf`).
pub fn bucket_bound(i: usize) -> f64 {
    debug_assert!(i < FINITE_BUCKETS);
    0.001 * (1u64 << i) as f64
}

/// Index of the bucket a sample falls into (values at a bound go into
/// that bound's bucket; anything above the last finite bound overflows).
pub fn bucket_index(value: f64) -> usize {
    for i in 0..FINITE_BUCKETS {
        if value <= bucket_bound(i) {
            return i;
        }
    }
    FINITE_BUCKETS
}

/// Streaming summary of one histogram series: count/sum/min/max plus
/// log-scaled bucket counts for quantile estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Per-bucket sample counts (non-cumulative); see [`bucket_bound`].
    pub buckets: [u64; BUCKET_COUNT],
}

impl Histogram {
    /// Records one sample into the summary and its bucket.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0 when empty — never the `INFINITY` sentinel
    /// the accumulator starts from (which must not leak into exports).
    pub fn min_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty (see [`Histogram::min_or_zero`]).
    pub fn max_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) from the bucket counts by
    /// linear interpolation inside the target bucket, clamped to the
    /// observed `[min, max]`. Uses the same nearest-rank convention as
    /// [`crate::quantile::percentile_sorted`], so the estimate lands in
    /// the same bucket as the exact sorted-sample quantile — i.e. within
    /// one bucket width of it. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64 + 1;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                let lo = if i == 0 { 0.0 } else { bucket_bound(i - 1) };
                let hi = if i < FINITE_BUCKETS { bucket_bound(i).min(self.max) } else { self.max };
                let frac = (rank - (cum - c)) as f64 / c as f64;
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another series' summary into this one. Bucket counts add, so
    /// merging is commutative except for `sum`, whose float additions are
    /// order-sensitive — callers wanting reproducible output must merge in
    /// a deterministic order. Merging an empty series is a no-op on
    /// min/max (the empty sentinel never propagates a finite change).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

/// The registry: every counter and histogram series recorded so far.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to a counter series.
    pub fn add(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Records one histogram sample.
    pub fn record(&mut self, key: MetricKey, value: f64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Folds every series of `other` into this registry: counters add,
    /// histogram summaries [`Histogram::merge`]. Used by the parallel
    /// experiment engine to combine per-worker registries; merging workers
    /// in a deterministic order makes the combined export reproducible.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(h);
        }
    }

    /// Sum of a counter's values across every label combination.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// All counter series, in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// All histogram series, in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Total number of series (counters + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.histograms.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Exports the registry as stable-schema JSON:
    ///
    /// ```json
    /// {
    ///   "schema": "pps-metrics",
    ///   "version": 1,
    ///   "counters":   [{"name": "...", "labels": {...}, "value": 1}],
    ///   "histograms": [{"name": "...", "labels": {...},
    ///                   "count": 1, "sum": 2.0, "min": 2.0, "max": 2.0, "mean": 2.0,
    ///                   "p50": 2.0, "p90": 2.0, "p95": 2.0, "p99": 2.0}]
    /// }
    /// ```
    ///
    /// The quantile fields are bucket estimates ([`Histogram::quantile`]);
    /// they were added in-place (no version bump — the schema only grows
    /// additively). Count-0 series export `min`/`max`/quantiles as 0, never
    /// the internal infinity sentinels.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.len() * 96);
        out.push_str("{\"schema\":\"pps-metrics\",\"version\":1,\n\"counters\":[");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json::escape_into(&mut out, &key.name);
            write_labels(&mut out, &key.labels);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push('}');
        }
        out.push_str("\n],\n\"histograms\":[");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json::escape_into(&mut out, &key.name);
            write_labels(&mut out, &key.labels);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                json::number(h.sum),
                json::number(h.min_or_zero()),
                json::number(h.max_or_zero()),
                json::number(h.mean()),
                json::number(h.quantile(0.50)),
                json::number(h.quantile(0.90)),
                json::number(h.quantile(0.95)),
                json::number(h.quantile(0.99)),
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)]) {
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(out, k);
        out.push(':');
        json::escape_into(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_merge_by_key() {
        let mut r = MetricsRegistry::default();
        r.add(MetricKey::new("x", &[("b", "2"), ("a", "1")]), 3);
        r.add(MetricKey::new("x", &[("a", "1"), ("b", "2")]), 4);
        r.add(MetricKey::new("x", &[("a", "other")]), 1);
        assert_eq!(r.counter_total("x"), 8);
        assert_eq!(r.counters().count(), 2, "label order must not split series");
    }

    #[test]
    fn histogram_summary() {
        let mut r = MetricsRegistry::default();
        let key = MetricKey::new("h", &[]);
        r.record(key.clone(), 2.0);
        r.record(key.clone(), 6.0);
        let (_, h) = r.histograms().next().unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn export_schema_is_stable_and_parseable() {
        let mut r = MetricsRegistry::default();
        r.add(MetricKey::new("c", &[("bench", "wc")]), 7);
        r.record(MetricKey::new("h", &[]), 1.5);
        let doc = parse(&r.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("pps-metrics"));
        assert_eq!(doc.get("version").unwrap().as_num(), Some(1.0));
        let cs = doc.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].get("value").unwrap().as_num(), Some(7.0));
        assert_eq!(
            cs[0].get("labels").unwrap().get("bench").unwrap().as_str(),
            Some("wc")
        );
        let hs = doc.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(hs[0].get("count").unwrap().as_num(), Some(1.0));
        assert_eq!(hs[0].get("mean").unwrap().as_num(), Some(1.5));
    }

    #[test]
    fn empty_export_still_has_all_keys() {
        let doc = parse(&MetricsRegistry::default().to_json()).unwrap();
        assert!(doc.get("counters").unwrap().as_arr().unwrap().is_empty());
        assert!(doc.get("histograms").unwrap().as_arr().unwrap().is_empty());
    }

    /// Regression: a count-0 series (fresh, or the merge of empty series)
    /// must never leak the `INFINITY`/`NEG_INFINITY` accumulator sentinels
    /// into the JSON export — every numeric field is 0 and the document
    /// still parses.
    #[test]
    fn empty_and_empty_merged_series_serialize_finite() {
        let mut r = MetricsRegistry::default();
        // Force a count-0 series into the registry, then merge two empty
        // registries' worth of the same key on top of it.
        r.histograms.insert(MetricKey::new("h", &[]), Histogram::default());
        let mut other = MetricsRegistry::default();
        other.histograms.insert(MetricKey::new("h", &[]), Histogram::default());
        r.merge(&other);
        let (_, h) = r.histograms().next().unwrap();
        assert_eq!(h.count, 0);
        assert!(h.min.is_infinite() && h.max.is_infinite(), "sentinels intact internally");
        let json = r.to_json();
        assert!(!json.contains("inf") && !json.contains("Inf"), "sentinel leaked: {json}");
        let doc = parse(&json).expect("count-0 series export parses");
        let hs = doc.get("histograms").unwrap().as_arr().unwrap();
        for field in ["min", "max", "mean", "p50", "p90", "p95", "p99"] {
            assert_eq!(hs[0].get(field).unwrap().as_num(), Some(0.0), "field {field}");
        }
    }

    /// Regression: merging an empty series into a populated one must not
    /// disturb min/max, and the other direction must adopt them.
    #[test]
    fn merge_with_empty_preserves_min_max() {
        let mut full = Histogram::default();
        full.record(2.0);
        full.record(6.0);
        let empty = Histogram::default();
        let mut a = full;
        a.merge(&empty);
        assert_eq!((a.count, a.min, a.max), (2, 2.0, 6.0));
        let mut b = empty;
        b.merge(&full);
        assert_eq!((b.count, b.min, b.max), (2, 2.0, 6.0));
        assert_eq!(b.buckets, full.buckets);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover() {
        for i in 1..FINITE_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0, "negatives fall into the first bucket");
        assert_eq!(bucket_index(bucket_bound(7)), 7, "bounds are inclusive");
        assert_eq!(bucket_index(f64::MAX), FINITE_BUCKETS, "overflow bucket");
    }

    #[test]
    fn quantiles_estimate_within_a_bucket() {
        let mut h = Histogram::default();
        for i in 1..=1000u64 {
            h.record(i as f64); // 1..=1000, uniform
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (1.0, 1000.0)] {
            let est = h.quantile(q);
            let idx = bucket_index(exact);
            let width = if idx == 0 {
                bucket_bound(0)
            } else if idx < FINITE_BUCKETS {
                bucket_bound(idx) - bucket_bound(idx - 1)
            } else {
                h.max - bucket_bound(FINITE_BUCKETS - 1)
            };
            assert!(
                (est - exact).abs() <= width,
                "q={q}: estimate {est} vs exact {exact} (bucket width {width})"
            );
        }
        // Quantiles never leave the observed range.
        assert!(h.quantile(0.0) >= 1.0 && h.quantile(1.0) <= 1000.0);
        // Single-sample histogram: every quantile is that sample.
        let mut one = Histogram::default();
        one.record(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42.0);
        }
    }
}
