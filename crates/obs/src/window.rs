//! Rolling time-windowed metrics: a ring of short [`MetricsRegistry`]
//! windows so rates and latency quantiles reflect the *recent past*
//! instead of the process lifetime.
//!
//! The serving daemon records every request into both its cumulative
//! registry (for Prometheus-style scraping, where the scraper differences
//! counters itself) and a [`WindowedRegistry`] (for the `/health` endpoint
//! and `pps-harness top`, which want "last N seconds" numbers directly).
//!
//! Time comes from an injected [`Clock`] so tests can drive rotation
//! deterministically; merge semantics are those of
//! [`MetricsRegistry::merge`] — windows are folded oldest-first, so a
//! snapshot is a deterministic function of (clock, recorded samples).

use crate::metrics::{Histogram, MetricKey, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Milliseconds since an epoch fixed at construction. Implementations
/// must be monotone.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;
}

impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now_ms(&self) -> u64 {
        (**self).now_ms()
    }
}

impl<C: Clock + ?Sized> Clock for Box<C> {
    fn now_ms(&self) -> u64 {
        (**self).now_ms()
    }
}

/// The production clock: wall time since construction.
#[derive(Debug)]
pub struct SystemClock {
    t0: Instant,
}

impl SystemClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        SystemClock { t0: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }
}

/// A hand-driven clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        ManualClock { ms: AtomicU64::new(0) }
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time.
    pub fn set(&self, ms: u64) {
        self.ms.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

struct Slot {
    /// Which window period this slot currently holds (`now_ms / width`).
    epoch: u64,
    reg: MetricsRegistry,
}

/// A fixed ring of `windows` × `width_ms` metric windows (default 8×1 s).
/// Recording goes into the current window; reading merges every window
/// still inside the horizon, oldest first.
pub struct WindowedRegistry<C: Clock> {
    width_ms: u64,
    clock: C,
    slots: Mutex<Vec<Slot>>,
}

impl<C: Clock> WindowedRegistry<C> {
    /// A ring of `windows` windows of `width_ms` each, read off `clock`.
    pub fn new(windows: usize, width_ms: u64, clock: C) -> Self {
        let windows = windows.max(1);
        let width_ms = width_ms.max(1);
        let slots = (0..windows)
            .map(|_| Slot { epoch: u64::MAX, reg: MetricsRegistry::default() })
            .collect();
        WindowedRegistry { width_ms, clock, slots: Mutex::new(slots) }
    }

    /// The full horizon the ring can cover, in seconds.
    pub fn horizon_s(&self) -> f64 {
        let n = self.slots.lock().unwrap().len();
        (n as u64 * self.width_ms) as f64 / 1e3
    }

    /// Adds `delta` to a counter in the current window.
    pub fn add(&self, key: MetricKey, delta: u64) {
        self.with_current(|reg| reg.add(key, delta));
    }

    /// Records one histogram sample in the current window.
    pub fn record(&self, key: MetricKey, value: f64) {
        self.with_current(|reg| reg.record(key, value));
    }

    fn with_current(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let epoch = self.clock.now_ms() / self.width_ms;
        let mut slots = self.slots.lock().unwrap();
        let n = slots.len();
        let slot = &mut slots[(epoch % n as u64) as usize];
        if slot.epoch != epoch {
            // The ring wrapped: this slot's window has aged out.
            slot.reg = MetricsRegistry::default();
            slot.epoch = epoch;
        }
        f(&mut slot.reg);
    }

    /// Merges every window still inside the horizon (oldest first — the
    /// deterministic order) into one registry, and returns it together
    /// with the span of wall time it covers, in seconds. The span counts
    /// whole windows from the oldest live one through the current,
    /// *partial* window's elapsed fraction, so rates computed as
    /// `count / seconds` are not deflated right after a rotation.
    pub fn snapshot(&self) -> (MetricsRegistry, f64) {
        let now = self.clock.now_ms();
        let epoch = now / self.width_ms;
        let slots = self.slots.lock().unwrap();
        let n = slots.len() as u64;
        let oldest_live = epoch.saturating_sub(n - 1);
        let mut merged = MetricsRegistry::default();
        let mut oldest_seen = epoch;
        // Oldest epoch first: iterate epochs, not slot indices.
        for e in oldest_live..=epoch {
            let slot = &slots[(e % n) as usize];
            if slot.epoch == e && !slot.reg.is_empty() {
                merged.merge(&slot.reg);
                oldest_seen = oldest_seen.min(e);
            }
        }
        let full_windows = epoch - oldest_seen; // complete windows behind the current one
        let partial_ms = now - epoch * self.width_ms;
        let covered_ms = full_windows * self.width_ms + partial_ms.max(1);
        (merged, covered_ms as f64 / 1e3)
    }

    /// Rate of counter `name` (all label combinations) over the covered
    /// window span, per second.
    pub fn rate(&self, name: &str) -> f64 {
        let (reg, seconds) = self.snapshot();
        reg.counter_total(name) as f64 / seconds.max(1e-9)
    }

    /// The merged histogram for `name` across live windows (summed over
    /// label combinations), if any samples are present.
    pub fn histogram_total(&self, name: &str) -> Option<Histogram> {
        let (reg, _) = self.snapshot();
        let mut acc: Option<Histogram> = None;
        for (key, h) in reg.histograms() {
            if key.name == name {
                acc.get_or_insert_with(Histogram::default).merge(h);
            }
        }
        acc.filter(|h| h.count > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(name: &str) -> MetricKey {
        MetricKey::new(name, &[])
    }

    #[test]
    fn current_window_accumulates() {
        let w = WindowedRegistry::new(8, 1000, ManualClock::new());
        w.add(key("req"), 3);
        w.add(key("req"), 2);
        w.record(key("lat"), 5.0);
        let (reg, seconds) = w.snapshot();
        assert_eq!(reg.counter_total("req"), 5);
        assert_eq!(reg.histograms().next().unwrap().1.count, 1);
        assert!(seconds > 0.0 && seconds <= 1.0, "partial window: {seconds}");
    }

    #[test]
    fn old_windows_age_out_of_the_horizon() {
        let clock = Arc::new(ManualClock::new());
        let w = WindowedRegistry::new(4, 1000, Arc::clone(&clock));
        w.add(key("req"), 10);
        clock.advance(2000);
        w.add(key("req"), 1);
        let (reg, _) = w.snapshot();
        assert_eq!(reg.counter_total("req"), 11, "both windows inside the horizon");
        // Jump past the horizon: only the new window's data survives.
        clock.advance(4000);
        w.add(key("req"), 7);
        let (reg, _) = w.snapshot();
        assert_eq!(reg.counter_total("req"), 7, "aged windows must not leak");
        // And a snapshot long after any write is empty again.
        clock.advance(60_000);
        let (reg, _) = w.snapshot();
        assert_eq!(reg.counter_total("req"), 0);
    }

    #[test]
    fn ring_reuses_slots_without_mixing_epochs() {
        let clock = ManualClock::new();
        let w = WindowedRegistry::new(2, 100, clock);
        w.add(key("req"), 1); // epoch 0, slot 0
        w.clock.advance(100); // epoch 1, slot 1
        w.add(key("req"), 1);
        w.clock.advance(100); // epoch 2 reuses slot 0 — old epoch-0 data must clear
        w.add(key("req"), 1);
        let (reg, _) = w.snapshot();
        assert_eq!(reg.counter_total("req"), 2, "epoch 0 was overwritten, 1+2 remain");
    }

    #[test]
    fn rates_and_quantiles_reflect_the_window() {
        let clock = ManualClock::new();
        let w = WindowedRegistry::new(8, 1000, clock);
        w.clock.set(500);
        for i in 0..100 {
            w.add(key("req"), 1);
            w.record(key("lat"), (i + 1) as f64);
        }
        // 100 events over 0.5 s of covered time → 200/s.
        assert!((w.rate("req") - 200.0).abs() < 1.0, "rate {}", w.rate("req"));
        let h = w.histogram_total("lat").unwrap();
        assert_eq!(h.count, 100);
        assert!(h.quantile(0.5) > 30.0 && h.quantile(0.5) < 70.0);
        assert!(w.histogram_total("missing").is_none());
    }

    #[test]
    fn snapshot_is_deterministic_under_fixed_clock() {
        let build = || {
            let w = WindowedRegistry::new(8, 1000, ManualClock::new());
            for i in 0..50u64 {
                w.clock.set(i * 100);
                w.add(MetricKey::new("req", &[("slot", "a")]), i);
                w.record(key("lat"), i as f64);
            }
            w.clock.set(5000);
            let (reg, s) = w.snapshot();
            (reg.to_json(), s)
        };
        assert_eq!(build(), build(), "same clock script, same snapshot bytes");
    }
}
