//! Prometheus text exposition (version 0.0.4): rendering a
//! [`MetricsRegistry`] (plus gauges) into scrape output, and a small
//! parser/validator used by `pps-harness top` and the CI telemetry smoke
//! stage to check what the daemon serves.
//!
//! Renderer conventions:
//!
//! - metric names are sanitized (`serve.latency_ms` → `serve_latency_ms`);
//!   counters get a `_total` suffix;
//! - histograms expose cumulative `_bucket{le="..."}` series over the
//!   registry's log-scaled bounds (only buckets up to the first one at the
//!   series total are emitted, then `le="+Inf"`), plus `_sum` and
//!   `_count`;
//! - gauges are point-in-time values the caller supplies (queue depth,
//!   worker counts, PGO counters from the health snapshot).
//!
//! The parser accepts the subset the renderer emits (and what Prometheus
//! itself would scrape): `# HELP`/`# TYPE` comments, `name{labels} value`
//! samples, `+Inf` bucket bounds. [`validate`] checks the structural
//! invariants scrapers rely on: monotone cumulative buckets, `_count`
//! equal to the `+Inf` bucket, `_sum` present, every value finite.

use crate::metrics::{bucket_bound, MetricsRegistry, FINITE_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A point-in-time gauge for the exposition.
#[derive(Debug, Clone)]
pub struct Gauge {
    /// Already-sanitized metric name (e.g. `serve_queue_depth`).
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: f64,
}

impl Gauge {
    /// A label-less gauge.
    pub fn new(name: &str, value: f64) -> Gauge {
        Gauge { name: name.to_string(), labels: Vec::new(), value }
    }
}

/// Maps a registry metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn write_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

fn write_labels_with_le(out: &mut String, labels: &[(String, String)], le: &str) {
    out.push('{');
    for (k, v) in labels {
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        out.push_str(v);
        out.push_str("\",");
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"}");
}

fn number(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Renders the registry's counters and histograms plus the given gauges as
/// Prometheus text exposition. Series order is deterministic (registry
/// iteration order, then gauges in argument order).
pub fn render(registry: &MetricsRegistry, gauges: &[Gauge]) -> String {
    let mut out = String::with_capacity(4096);
    let mut last_family = String::new();
    let type_line = |out: &mut String, family: &str, kind: &str, last: &mut String| {
        if family != last {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            last.clear();
            last.push_str(family);
        }
    };

    for (key, value) in registry.counters() {
        let family = format!("{}_total", sanitize_name(&key.name));
        type_line(&mut out, &family, "counter", &mut last_family);
        out.push_str(&family);
        write_labels(&mut out, &key.labels);
        let _ = writeln!(out, " {value}");
    }

    for (key, h) in registry.histograms() {
        let family = sanitize_name(&key.name);
        type_line(&mut out, &family, "histogram", &mut last_family);
        let mut cum = 0u64;
        for i in 0..FINITE_BUCKETS {
            cum += h.buckets[i];
            out.push_str(&family);
            out.push_str("_bucket");
            write_labels_with_le(&mut out, &key.labels, &number(bucket_bound(i)));
            let _ = writeln!(out, " {cum}");
            if cum == h.count {
                // Every remaining finite bucket would repeat the total;
                // stop at the first saturated bound and go to +Inf.
                break;
            }
        }
        out.push_str(&family);
        out.push_str("_bucket");
        write_labels_with_le(&mut out, &key.labels, "+Inf");
        let _ = writeln!(out, " {}", h.count);
        out.push_str(&family);
        out.push_str("_sum");
        write_labels(&mut out, &key.labels);
        let _ = writeln!(out, " {}", number(if h.sum.is_finite() { h.sum } else { 0.0 }));
        out.push_str(&family);
        out.push_str("_count");
        write_labels(&mut out, &key.labels);
        let _ = writeln!(out, " {}", h.count);
    }

    for g in gauges {
        let family = sanitize_name(&g.name);
        type_line(&mut out, &family, "gauge", &mut last_family);
        out.push_str(&family);
        write_labels(&mut out, &g.labels);
        let _ = writeln!(out, " {}", number(if g.value.is_finite() { g.value } else { 0.0 }));
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (`serve_latency_ms_bucket`).
    pub name: String,
    /// Label pairs, in source order (includes `le` for buckets).
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Labels with `le` removed — the identity of a bucket's parent series.
    pub fn labels_without_le(&self) -> Vec<(String, String)> {
        self.labels.iter().filter(|(k, _)| k != "le").cloned().collect()
    }
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct ExpoDoc {
    /// Every sample, in source order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → declared type.
    pub types: BTreeMap<String, String>,
}

impl ExpoDoc {
    /// All samples with exactly this name.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// Sum of every sample with this name (e.g. a counter across labels).
    pub fn total(&self, name: &str) -> f64 {
        self.by_name(name).map(|s| s.value).sum()
    }

    /// The single value of `name` with no label filter, if exactly one
    /// sample carries it.
    pub fn single(&self, name: &str) -> Option<f64> {
        let mut it = self.by_name(name);
        let first = it.next()?;
        if it.next().is_some() {
            return None;
        }
        Some(first.value)
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse().map_err(|_| format!("bad value `{s}`")),
    }
}

/// Parses exposition text into samples and type declarations.
///
/// # Errors
/// A human-readable message naming the offending line.
pub fn parse(text: &str) -> Result<ExpoDoc, String> {
    let mut doc = ExpoDoc::default();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return Err(format!("line {}: malformed TYPE comment", ln + 1));
                };
                doc.types.insert(name.to_string(), kind.to_string());
            }
            continue; // HELP and other comments
        }
        doc.samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(doc)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ' || b == b'\t')
        .ok_or("no value on sample line")?;
    let name = &line[..name_end];
    if name.is_empty() {
        return Err("empty metric name".into());
    }
    let mut labels = Vec::new();
    let mut pos = name_end;
    if bytes[pos] == b'{' {
        pos += 1;
        loop {
            while pos < bytes.len() && (bytes[pos] == b' ' || bytes[pos] == b',') {
                pos += 1;
            }
            if pos >= bytes.len() {
                return Err("unterminated label set".into());
            }
            if bytes[pos] == b'}' {
                pos += 1;
                break;
            }
            let key_start = pos;
            while pos < bytes.len() && bytes[pos] != b'=' {
                pos += 1;
            }
            let key = line[key_start..pos].trim().to_string();
            pos += 1; // '='
            if pos >= bytes.len() || bytes[pos] != b'"' {
                return Err(format!("label `{key}`: expected quoted value"));
            }
            pos += 1;
            let mut value = String::new();
            loop {
                if pos >= bytes.len() {
                    return Err(format!("label `{key}`: unterminated string"));
                }
                match bytes[pos] {
                    b'"' => {
                        pos += 1;
                        break;
                    }
                    b'\\' => {
                        pos += 1;
                        match bytes.get(pos) {
                            Some(b'n') => value.push('\n'),
                            Some(&c) => value.push(c as char),
                            None => return Err("dangling escape".into()),
                        }
                        pos += 1;
                    }
                    _ => {
                        // Multi-byte chars: copy the full char.
                        let c = line[pos..].chars().next().expect("in bounds");
                        value.push(c);
                        pos += c.len_utf8();
                    }
                }
            }
            labels.push((key, value));
        }
    }
    let rest = line[pos..].trim();
    // A timestamp may follow the value; take the first token.
    let value_str = rest.split_whitespace().next().ok_or("no value on sample line")?;
    Ok(Sample { name: name.to_string(), labels, value: parse_value(value_str)? })
}

/// Checks the invariants a scraper relies on. For every histogram family
/// (`X_bucket`/`X_sum`/`X_count` with shared non-`le` labels):
///
/// - bucket values are cumulative and monotone non-decreasing in `le`
///   order, ending in a `+Inf` bucket;
/// - `X_count` equals the `+Inf` bucket;
/// - `X_sum` is present;
///
/// and every sample value in the document is finite (no `NaN` leaks; the
/// only permitted infinity is the `+Inf` *bound label*).
///
/// # Errors
/// The first violated invariant, as a message.
pub fn validate(doc: &ExpoDoc) -> Result<(), String> {
    for s in &doc.samples {
        if !s.value.is_finite() {
            return Err(format!("{}: non-finite sample value {}", s.name, s.value));
        }
    }

    // Group buckets by (family, labels-without-le).
    let mut families: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for s in &doc.samples {
        let Some(family) = s.name.strip_suffix("_bucket") else { continue };
        let Some(le) = s.label("le") else {
            return Err(format!("{}: bucket sample without le label", s.name));
        };
        let bound = parse_value(le).map_err(|e| format!("{}: le: {e}", s.name))?;
        let ident = format!("{:?}", s.labels_without_le());
        families.entry((family.to_string(), ident)).or_default().push((bound, s.value));
    }
    for ((family, ident), mut buckets) in families {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are not NaN"));
        let mut prev = f64::NEG_INFINITY;
        for &(bound, v) in &buckets {
            if v < prev {
                return Err(format!(
                    "{family}{ident}: bucket le={bound} value {v} below previous {prev} \
                     (buckets must be cumulative)"
                ));
            }
            prev = v;
        }
        let Some(&(last_bound, inf_value)) = buckets.last() else { continue };
        if last_bound != f64::INFINITY {
            return Err(format!("{family}{ident}: no le=\"+Inf\" bucket"));
        }
        let count_name = format!("{family}_count");
        let count = doc
            .samples
            .iter()
            .find(|s| s.name == count_name && format!("{:?}", s.labels) == ident)
            .ok_or_else(|| format!("{family}{ident}: missing {count_name}"))?;
        if count.value != inf_value {
            return Err(format!(
                "{family}{ident}: _count {} != +Inf bucket {}",
                count.value, inf_value
            ));
        }
        let sum_name = format!("{family}_sum");
        if !doc
            .samples
            .iter()
            .any(|s| s.name == sum_name && format!("{:?}", s.labels) == ident)
        {
            return Err(format!("{family}{ident}: missing {sum_name}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricKey};

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::default();
        r.add(MetricKey::new("serve.requests", &[("type", "ping"), ("outcome", "ok")]), 5);
        r.add(MetricKey::new("serve.requests", &[("type", "compile"), ("outcome", "ok")]), 2);
        for v in [0.5, 1.5, 3.0, 250.0] {
            r.record(MetricKey::new("serve.latency_ms", &[("type", "compile")]), v);
        }
        r
    }

    #[test]
    fn render_parse_round_trip_preserves_series() {
        let reg = sample_registry();
        let gauges = [Gauge::new("serve_queue_depth", 3.0), Gauge::new("pgo_swaps", 1.0)];
        let text = render(&reg, &gauges);
        let doc = parse(&text).expect("rendered exposition parses");
        assert_eq!(doc.total("serve_requests_total"), 7.0);
        assert_eq!(doc.single("serve_queue_depth"), Some(3.0));
        assert_eq!(doc.single("pgo_swaps"), Some(1.0));
        assert_eq!(doc.single("serve_latency_ms_count"), Some(4.0));
        assert_eq!(doc.single("serve_latency_ms_sum"), Some(255.0));
        assert_eq!(doc.types.get("serve_requests_total").map(String::as_str), Some("counter"));
        assert_eq!(doc.types.get("serve_latency_ms").map(String::as_str), Some("histogram"));
        assert_eq!(doc.types.get("serve_queue_depth").map(String::as_str), Some("gauge"));
        validate(&doc).expect("renderer output passes its own validator");
    }

    #[test]
    fn buckets_are_cumulative_and_capped_with_inf() {
        let reg = sample_registry();
        let doc = parse(&render(&reg, &[])).unwrap();
        let buckets: Vec<&Sample> = doc.by_name("serve_latency_ms_bucket").collect();
        assert!(buckets.len() >= 2);
        let mut prev = -1.0;
        for b in &buckets {
            assert!(b.value >= prev, "bucket counts must not decrease");
            prev = b.value;
        }
        let inf = buckets.iter().find(|b| b.label("le") == Some("+Inf")).expect("+Inf bucket");
        assert_eq!(inf.value, 4.0);
    }

    #[test]
    fn empty_histogram_and_nonfinite_gauge_render_finite() {
        // A merged-from-empty histogram: count 0, min/max still sentinels.
        let mut h = Histogram::default();
        h.merge(&Histogram::default());
        let mut reg = MetricsRegistry::default();
        reg.record(MetricKey::new("h", &[]), 1.0);
        let text = render(&reg, &[Gauge::new("g", f64::INFINITY)]);
        assert!(!text.contains("inf") || text.contains("+Inf"), "only le bounds may be Inf");
        let doc = parse(&text).unwrap();
        validate(&doc).expect("non-finite gauge was clamped");
        assert_eq!(doc.single("g"), Some(0.0));
        assert_eq!(doc.single("h_count"), Some(1.0));
    }

    #[test]
    fn sanitizer_covers_registry_names() {
        assert_eq!(sanitize_name("serve.latency_ms"), "serve_latency_ms");
        assert_eq!(sanitize_name("pgo.drift-score"), "pgo_drift_score");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let doc = parse("m{a=\"x\\\"y\\\\z\",b=\"w\"} 2.5\n").unwrap();
        assert_eq!(doc.samples[0].label("a"), Some("x\"y\\z"));
        assert_eq!(doc.samples[0].value, 2.5);
        assert!(parse("m{a=\"unterminated} 1\n").is_err());
        assert!(parse("m{a=noquote} 1\n").is_err());
        assert!(parse("justaname\n").is_err());
        assert!(parse("m notanumber\n").is_err());
    }

    #[test]
    fn validator_catches_broken_histograms() {
        // Non-monotone buckets.
        let text = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n";
        let err = validate(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
        // _count disagreeing with +Inf.
        let text = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        let err = validate(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("_count"), "{err}");
        // Missing +Inf.
        let text = "h_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        let err = validate(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
        // Missing _sum.
        let text = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        let err = validate(&parse(text).unwrap()).unwrap_err();
        assert!(err.contains("_sum"), "{err}");
        // NaN sample.
        let err = validate(&parse("g NaN\n").unwrap()).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }
}
