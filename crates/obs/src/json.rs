//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used by tests and the CI smoke validator.
//!
//! The crate is zero-dependency by contract (it sits under every other
//! crate in the workspace and must never pull a registry crate), so both
//! directions are hand-rolled. The parser accepts strict RFC 8259 JSON; it
//! exists to *validate* the exporters' output, not to be a general
//! deserializer.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `x` as a JSON number. Non-finite values (which JSON cannot
/// represent) are clamped to `0` rather than emitting invalid output.
pub fn number(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` for other values or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not reconstructed; the
                        // exporters never emit them (they escape only
                        // control characters).
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parse_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }
}
