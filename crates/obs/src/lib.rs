#![warn(missing_docs)]

//! `pps-obs`: the zero-dependency observability layer of the workspace.
//!
//! The scheduler pipeline is instrumented with three kinds of signals, all
//! flowing through one cloneable [`Obs`] handle:
//!
//! - **Spans** ([`Obs::span`]) — hierarchical wall-time intervals
//!   (benchmark → procedure → pass). Exported as Chrome trace-event JSON
//!   ([`Obs::export_trace_json`]) viewable in Perfetto.
//! - **Metrics** ([`Obs::counter`], [`Obs::histogram`]) — labeled counters
//!   and histograms in a [`MetricsRegistry`], exported as stable-schema
//!   JSON ([`Obs::export_metrics_json`]).
//! - **Decision events** ([`Obs::decision`]) — structured instant events
//!   (trace id, weight, chosen/rejected reason) that make formation and
//!   compaction choices queryable instead of guessable.
//!
//! Plus leveled logging ([`Obs::log`]) to stderr.
//!
//! ## Overhead contract
//!
//! [`Obs::noop`] is the pay-for-what-you-use off switch: it holds no
//! allocation and every method is a single `Option` check that returns
//! immediately — no formatting, no clock reads, no locking. Library entry
//! points default to the no-op handle; recording is opted into per call
//! chain by passing [`Obs::recording`]. Log-message construction is kept
//! lazy by taking closures.
//!
//! The recording handle uses a `Mutex` around an event vector and the
//! registry; the pipeline is single-threaded per run, so contention is
//! nil, and events are only serialized at export time.

pub mod expo;
pub mod json;
pub mod metrics;
pub mod quantile;
pub mod trace;
pub mod window;

pub use metrics::{Histogram, MetricKey, MetricsRegistry};
pub use trace::{ArgValue, TraceEvent};
pub use window::{Clock, ManualClock, SystemClock, WindowedRegistry};

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Log verbosity threshold, in increasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Suppress all logging.
    Off,
    /// Failures only.
    Error,
    /// Recoverable anomalies (e.g. guard incidents).
    Warn,
    /// Progress (per-experiment/per-benchmark lines). The harness default.
    #[default]
    Info,
    /// Per-pass detail.
    Debug,
}

impl Level {
    /// Parses `error|warn|info|debug|off` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Configuration of a recording [`Obs`] handle.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Stderr log threshold.
    pub level: Level,
    /// Record trace events (spans, decisions, instants).
    pub trace: bool,
    /// Record metrics (counters, histograms).
    pub metrics: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { level: Level::Info, trace: true, metrics: true }
    }
}

struct Recorder {
    t0: Instant,
    level: Level,
    trace_enabled: bool,
    metrics_enabled: bool,
    events: Mutex<Vec<TraceEvent>>,
    metrics: Mutex<MetricsRegistry>,
    tids: Mutex<(HashMap<ThreadId, u64>, u64)>,
}

impl Recorder {
    fn tid(&self) -> u64 {
        let mut guard = self.tids.lock().unwrap();
        let (map, next) = &mut *guard;
        let id = std::thread::current().id();
        if let Some(&t) = map.get(&id) {
            return t;
        }
        *next += 1;
        map.insert(id, *next);
        *next
    }

    fn now_us(&self) -> f64 {
        self.t0.elapsed().as_nanos() as f64 / 1000.0
    }
}

/// The observability handle threaded through the pipeline.
///
/// Cloning is cheap (an `Arc` clone). A handle carries an optional label
/// context ([`Obs::with_label`]) applied to every counter and histogram it
/// records — the runner scopes a handle per `bench`/`scheme`, formation
/// adds `proc`, and so on.
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Arc<Recorder>>,
    labels: Option<Arc<Vec<(String, String)>>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("recording", &self.rec.is_some())
            .field("labels", &self.labels)
            .finish()
    }
}

impl Obs {
    /// The no-op handle: records nothing, logs nothing, allocates nothing.
    pub fn noop() -> Obs {
        Obs { rec: None, labels: None }
    }

    /// A recording handle with its own clock zero and empty registry.
    pub fn recording(config: ObsConfig) -> Obs {
        Obs {
            rec: Some(Arc::new(Recorder {
                t0: Instant::now(),
                level: config.level,
                trace_enabled: config.trace,
                metrics_enabled: config.metrics,
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(MetricsRegistry::default()),
                tids: Mutex::new((HashMap::new(), 0)),
            })),
            labels: None,
        }
    }

    /// True when this handle records anything at all.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// A child handle whose counters/histograms additionally carry
    /// `key=value`. No-op handles stay no-op (and allocation-free).
    pub fn with_label(&self, key: &str, value: impl Into<String>) -> Obs {
        let Some(rec) = &self.rec else { return Obs::noop() };
        let mut labels: Vec<(String, String)> =
            self.labels.as_ref().map(|l| l.as_ref().clone()).unwrap_or_default();
        let value = value.into();
        match labels.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => labels.push((key.to_string(), value)),
        }
        labels.sort();
        Obs { rec: Some(rec.clone()), labels: Some(Arc::new(labels)) }
    }

    // ------------------------------------------------------------------
    // Spans
    // ------------------------------------------------------------------

    /// Opens a span; it closes (and is recorded) when the returned guard
    /// drops. On a no-op handle this costs one branch and nothing else.
    pub fn span(&self, name: &str) -> Span {
        match &self.rec {
            Some(rec) if rec.trace_enabled => Span {
                rec: Some(rec.clone()),
                name: name.to_string(),
                start_us: rec.now_us(),
                tid: rec.tid(),
                args: Vec::new(),
            },
            _ => Span { rec: None, name: String::new(), start_us: 0.0, tid: 0, args: Vec::new() },
        }
    }

    // ------------------------------------------------------------------
    // Instant / decision events
    // ------------------------------------------------------------------

    /// Records an instant event under category `cat`.
    pub fn instant(&self, cat: &str, name: &str, args: &[(&str, ArgValue)]) {
        let Some(rec) = &self.rec else { return };
        if !rec.trace_enabled {
            return;
        }
        let event = TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us: rec.now_us(),
            dur_us: None,
            tid: rec.tid(),
            args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        rec.events.lock().unwrap().push(event);
    }

    /// Records a structured decision event (category `decision`) — a
    /// formation or compaction choice with its inputs (path id, weight)
    /// and outcome (chosen/rejected reason) attached as args.
    pub fn decision(&self, name: &str, args: &[(&str, ArgValue)]) {
        self.instant("decision", name, args);
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Adds `delta` to counter `name` under this handle's label context.
    pub fn counter(&self, name: &str, delta: u64) {
        self.counter_labeled(name, &[], delta);
    }

    /// [`Obs::counter`] with extra per-call labels on top of the handle's.
    pub fn counter_labeled(&self, name: &str, extra: &[(&str, &str)], delta: u64) {
        let Some(rec) = &self.rec else { return };
        if !rec.metrics_enabled {
            return;
        }
        rec.metrics.lock().unwrap().add(self.key(name, extra), delta);
    }

    /// Records one histogram sample under this handle's label context.
    pub fn histogram(&self, name: &str, value: f64) {
        let Some(rec) = &self.rec else { return };
        if !rec.metrics_enabled {
            return;
        }
        rec.metrics.lock().unwrap().record(self.key(name, &[]), value);
    }

    fn key(&self, name: &str, extra: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            self.labels.as_ref().map(|l| l.as_ref().clone()).unwrap_or_default();
        for (k, v) in extra {
            match labels.iter_mut().find(|(lk, _)| lk == k) {
                Some(slot) => slot.1 = v.to_string(),
                None => labels.push((k.to_string(), v.to_string())),
            }
        }
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    // ------------------------------------------------------------------
    // Forked sinks (parallel recording)
    // ------------------------------------------------------------------

    /// A recording handle with this handle's clock zero, level, and label
    /// context but **fresh, private buffers**. Worker threads record into
    /// forks without contending on (or interleaving into) the parent;
    /// [`Obs::absorb`] folds a fork back in. Forking a no-op handle yields
    /// a no-op handle.
    pub fn fork_sink(&self) -> Obs {
        let Some(rec) = &self.rec else { return Obs::noop() };
        Obs {
            rec: Some(Arc::new(Recorder {
                t0: rec.t0,
                level: rec.level,
                trace_enabled: rec.trace_enabled,
                metrics_enabled: rec.metrics_enabled,
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(MetricsRegistry::default()),
                tids: Mutex::new((HashMap::new(), 0)),
            })),
            labels: self.labels.clone(),
        }
    }

    /// Drains a fork's recorded events and metrics into this handle.
    ///
    /// Counters add and histogram summaries merge ([`MetricsRegistry::merge`]);
    /// trace events keep their fork-relative timestamps (forks share the
    /// parent's clock zero) with thread ids remapped to fresh lanes so
    /// distinct workers stay distinct in the merged trace. Absorbing in a
    /// deterministic order makes the merged metrics export byte-stable
    /// regardless of how many workers recorded. The fork is left empty;
    /// absorbing it twice, absorbing a no-op, or absorbing into a no-op is
    /// harmless.
    pub fn absorb(&self, fork: &Obs) {
        let (Some(rec), Some(frec)) = (&self.rec, &fork.rec) else { return };
        if std::ptr::eq(Arc::as_ptr(rec), Arc::as_ptr(frec)) {
            return;
        }
        if rec.trace_enabled {
            let mut events = std::mem::take(&mut *frec.events.lock().unwrap());
            if !events.is_empty() {
                let mut remap: HashMap<u64, u64> = HashMap::new();
                {
                    let mut guard = rec.tids.lock().unwrap();
                    let (_, next) = &mut *guard;
                    for e in &mut events {
                        let t = *remap.entry(e.tid).or_insert_with(|| {
                            *next += 1;
                            *next
                        });
                        e.tid = t;
                    }
                }
                rec.events.lock().unwrap().extend(events);
            }
        }
        if rec.metrics_enabled {
            let snapshot = std::mem::take(&mut *frec.metrics.lock().unwrap());
            rec.metrics.lock().unwrap().merge(&snapshot);
        }
    }

    // ------------------------------------------------------------------
    // Logging
    // ------------------------------------------------------------------

    /// True when a message at `level` would be emitted — guard expensive
    /// message construction with this (or use the lazy [`Obs::log`]).
    pub fn log_enabled(&self, level: Level) -> bool {
        matches!(&self.rec, Some(rec) if level <= rec.level && level != Level::Off)
    }

    /// Logs lazily: `msg` is only invoked (and the line only printed) when
    /// `level` passes the threshold. The line is also recorded as an
    /// instant trace event (category `log`) when tracing is enabled.
    pub fn log(&self, level: Level, msg: impl FnOnce() -> String) {
        if !self.log_enabled(level) {
            return;
        }
        let text = msg();
        eprintln!("[pps {}] {}", level.tag(), text);
        self.instant("log", level.tag(), &[("message", ArgValue::Str(text))]);
    }

    // ------------------------------------------------------------------
    // Export / introspection
    // ------------------------------------------------------------------

    /// Number of trace events recorded so far (0 for no-op handles).
    pub fn event_count(&self) -> usize {
        self.rec.as_ref().map_or(0, |r| r.events.lock().unwrap().len())
    }

    /// Sum of counter `name` across all label combinations (0 for no-op).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.rec
            .as_ref()
            .map_or(0, |r| r.metrics.lock().unwrap().counter_total(name))
    }

    /// A snapshot of the metrics registry, if metrics recording is on.
    pub fn metrics_snapshot(&self) -> Option<MetricsRegistry> {
        match &self.rec {
            Some(rec) if rec.metrics_enabled => Some(rec.metrics.lock().unwrap().clone()),
            _ => None,
        }
    }

    /// Chrome trace-event JSON of everything recorded, if tracing is on.
    pub fn export_trace_json(&self) -> Option<String> {
        match &self.rec {
            Some(rec) if rec.trace_enabled => {
                Some(trace::export_chrome(&rec.events.lock().unwrap()))
            }
            _ => None,
        }
    }

    /// Stable-schema metrics JSON, if metrics recording is on.
    pub fn export_metrics_json(&self) -> Option<String> {
        self.metrics_snapshot().map(|m| m.to_json())
    }

    /// Writes the trace JSON to `path`. Returns `false` (writing nothing)
    /// when tracing is disabled.
    ///
    /// # Errors
    /// Propagates the filesystem error.
    pub fn write_trace(&self, path: &str) -> std::io::Result<bool> {
        match self.export_trace_json() {
            Some(doc) => std::fs::write(path, doc).map(|()| true),
            None => Ok(false),
        }
    }

    /// Writes the metrics JSON to `path`. Returns `false` when metrics
    /// recording is disabled.
    ///
    /// # Errors
    /// Propagates the filesystem error.
    pub fn write_metrics(&self, path: &str) -> std::io::Result<bool> {
        match self.export_metrics_json() {
            Some(doc) => std::fs::write(path, doc).map(|()| true),
            None => Ok(false),
        }
    }
}

/// RAII span guard from [`Obs::span`]; records a complete (`ph:"X"`)
/// trace event when dropped.
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct Span {
    rec: Option<Arc<Recorder>>,
    name: String,
    start_us: f64,
    tid: u64,
    args: Vec<(String, ArgValue)>,
}

impl Span {
    /// Attaches a structured argument (builder-style).
    pub fn arg(mut self, key: &str, value: impl Into<ArgValue>) -> Self {
        if self.rec.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
        self
    }

    /// Attaches a structured argument to an already-bound span.
    pub fn set_arg(&mut self, key: &str, value: impl Into<ArgValue>) {
        if self.rec.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        let end_us = rec.now_us();
        let event = TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: "span".to_string(),
            ph: 'X',
            ts_us: self.start_us,
            dur_us: Some((end_us - self.start_us).max(0.0)),
            tid: self.tid,
            args: std::mem::take(&mut self.args),
        };
        rec.events.lock().unwrap().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_and_allocates_nothing() {
        let obs = Obs::noop();
        {
            let _s = obs.span("x").arg("k", 1u64);
            obs.counter("c", 5);
            obs.histogram("h", 1.0);
            obs.decision("d", &[("w", ArgValue::UInt(1))]);
            obs.log(Level::Error, || unreachable!("lazy message must not run"));
        }
        assert_eq!(obs.event_count(), 0);
        assert_eq!(obs.counter_total("c"), 0);
        assert!(obs.export_trace_json().is_none());
        assert!(obs.export_metrics_json().is_none());
        assert!(!obs.is_recording());
        // Labeling a no-op handle keeps it no-op.
        assert!(!obs.with_label("bench", "wc").is_recording());
    }

    #[test]
    fn spans_nest_by_interval() {
        let obs = Obs::recording(ObsConfig::default());
        {
            let _outer = obs.span("outer").arg("bench", "wc");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = obs.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _inner2 = obs.span("inner2");
            }
        }
        let doc = json::parse(&obs.export_trace_json().unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let (outer, inner, inner2) = (find("outer"), find("inner"), find("inner2"));
        let span_of = |e: &json::Json| {
            let ts = e.get("ts").unwrap().as_num().unwrap();
            let dur = e.get("dur").unwrap().as_num().unwrap();
            (ts, ts + dur)
        };
        let (o0, o1) = span_of(outer);
        for child in [inner, inner2] {
            let (c0, c1) = span_of(child);
            assert!(o0 <= c0 && c1 <= o1, "child [{c0},{c1}] outside parent [{o0},{o1}]");
        }
        // Siblings must not overlap.
        let (a0, a1) = span_of(inner);
        let (b0, _) = span_of(inner2);
        assert!(a1 <= b0 || b0 >= a0, "sibling ordering");
        // Everything ran on one thread.
        assert!(events
            .iter()
            .all(|e| e.get("tid").unwrap().as_num() == Some(1.0)));
    }

    #[test]
    fn labels_scope_counters() {
        let obs = Obs::recording(ObsConfig::default());
        let wc = obs.with_label("bench", "wc");
        let go = obs.with_label("bench", "go");
        wc.counter("runs", 1);
        go.counter("runs", 2);
        go.with_label("bench", "override").counter("runs", 4);
        assert_eq!(obs.counter_total("runs"), 7);
        let m = obs.metrics_snapshot().unwrap();
        assert_eq!(m.counters().count(), 3, "three distinct label sets");
    }

    #[test]
    fn log_respects_threshold() {
        let obs = Obs::recording(ObsConfig { level: Level::Warn, ..Default::default() });
        assert!(obs.log_enabled(Level::Error));
        assert!(obs.log_enabled(Level::Warn));
        assert!(!obs.log_enabled(Level::Info));
        obs.log(Level::Info, || unreachable!("suppressed message must stay lazy"));
        obs.log(Level::Warn, || "recorded".to_string());
        assert_eq!(obs.event_count(), 1, "log line became a trace event");
        let off = Obs::recording(ObsConfig { level: Level::Off, ..Default::default() });
        assert!(!off.log_enabled(Level::Error));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn fork_records_privately_and_absorb_merges() {
        let obs = Obs::recording(ObsConfig::default());
        obs.counter("runs", 1);
        {
            let _parent_span = obs.span("parent");
        }
        let forks: Vec<Obs> = (0..2).map(|_| obs.fork_sink()).collect();
        std::thread::scope(|s| {
            for (i, fork) in forks.iter().enumerate() {
                s.spawn(move || {
                    let _sp = fork.span("work").arg("worker", i as u64);
                    fork.counter("runs", 10);
                    fork.histogram("h", i as f64);
                });
            }
        });
        // Nothing leaked into the parent before absorption.
        assert_eq!(obs.counter_total("runs"), 1);
        assert_eq!(obs.event_count(), 1);
        for fork in &forks {
            obs.absorb(fork);
            obs.absorb(fork); // drained: second absorb is a no-op
        }
        assert_eq!(obs.counter_total("runs"), 21);
        assert_eq!(obs.event_count(), 3);
        let m = obs.metrics_snapshot().unwrap();
        let (_, h) = m.histograms().next().unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 0.0, 1.0));
        // Worker lanes stay distinct from the parent's and each other's.
        let doc = json::parse(&obs.export_trace_json().unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let tids: std::collections::HashSet<u64> = events
            .iter()
            .map(|e| e.get("tid").unwrap().as_num().unwrap() as u64)
            .collect();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn forked_labels_and_noop_absorb() {
        let obs = Obs::recording(ObsConfig::default());
        let labeled = obs.with_label("bench", "wc");
        let fork = labeled.fork_sink();
        fork.counter("runs", 2);
        obs.absorb(&fork);
        let m = obs.metrics_snapshot().unwrap();
        let (key, _) = m.counters().next().unwrap();
        assert_eq!(key.labels, vec![("bench".to_string(), "wc".to_string())]);
        // No-op interactions are all harmless.
        assert!(!Obs::noop().fork_sink().is_recording());
        obs.absorb(&Obs::noop());
        Obs::noop().absorb(&obs);
        obs.absorb(&obs); // self-absorb must not deadlock or duplicate
        assert_eq!(obs.counter_total("runs"), 2);
    }

    #[test]
    fn disabled_trace_keeps_metrics() {
        let obs = Obs::recording(ObsConfig { trace: false, ..Default::default() });
        let _s = obs.span("x");
        obs.counter("c", 1);
        assert!(obs.export_trace_json().is_none());
        assert_eq!(obs.counter_total("c"), 1);
        let obs = Obs::recording(ObsConfig { metrics: false, ..Default::default() });
        obs.counter("c", 1);
        assert!(obs.export_metrics_json().is_none());
        assert_eq!(obs.counter_total("c"), 0);
    }
}
