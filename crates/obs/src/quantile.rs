//! Exact quantiles over collected samples — the one implementation shared
//! by the load generator, the telemetry windows, and tests that cross-check
//! the bucketed [`crate::Histogram`] estimates against ground truth.
//!
//! The convention is nearest-rank with rounding: the `q`-quantile of `n`
//! sorted samples is the sample at index `round((n - 1) * q)`. It is exact
//! (no interpolation between samples), deterministic, and matches what the
//! loadgen has always reported.

/// The `q`-quantile (0 ≤ q ≤ 1) of an already **sorted** slice, by nearest
/// rank. Returns 0 for an empty slice.
pub fn percentile_sorted(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

/// Sorts `samples` in place and returns `(p50, p90, p95, p99, max)`.
pub fn summarize(samples: &mut [u64]) -> (f64, f64, f64, f64, f64) {
    samples.sort_unstable();
    (
        percentile_sorted(samples, 0.50),
        percentile_sorted(samples, 0.90),
        percentile_sorted(samples, 0.95),
        percentile_sorted(samples, 0.99),
        percentile_sorted(samples, 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_bound, bucket_index, Histogram, FINITE_BUCKETS};

    #[test]
    fn empty_and_single() {
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7], 0.0), 7.0);
        assert_eq!(percentile_sorted(&[7], 1.0), 7.0);
    }

    #[test]
    fn nearest_rank_on_uniform_data() {
        let us: Vec<u64> = (1..=100).collect();
        assert!((percentile_sorted(&us, 0.50) - 50.0).abs() < 1.5);
        assert!((percentile_sorted(&us, 0.95) - 95.0).abs() < 1.5);
        assert_eq!(percentile_sorted(&us, 1.0), 100.0);
    }

    /// Property: for seeded pseudo-random sample sets, the bucketed
    /// histogram's quantile estimate lands within one bucket width of the
    /// exact sorted-sample quantile (the accuracy contract `pps-harness
    /// top` and the telemetry endpoint rely on).
    #[test]
    fn bucketed_estimate_tracks_exact_quantiles() {
        let mut state = 0x243F_6A88_85A3_08D3u64; // splitmix64 stream
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for case in 0..50 {
            let n = 1 + (next() % 500) as usize;
            // Spread samples across several orders of magnitude.
            let mut samples: Vec<u64> = (0..n)
                .map(|_| 1 + next() % 10u64.pow(1 + (case % 5) as u32))
                .collect();
            let mut h = Histogram::default();
            for &s in &samples {
                h.record(s as f64);
            }
            samples.sort_unstable();
            for q in [0.5, 0.9, 0.95, 0.99] {
                let exact = percentile_sorted(&samples, q);
                let est = h.quantile(q);
                let idx = bucket_index(exact);
                let width = if idx == 0 {
                    bucket_bound(0)
                } else if idx < FINITE_BUCKETS {
                    bucket_bound(idx) - bucket_bound(idx - 1)
                } else {
                    h.max - bucket_bound(FINITE_BUCKETS - 1)
                };
                assert!(
                    (est - exact).abs() <= width,
                    "case {case} n {n} q {q}: estimate {est} vs exact {exact} (width {width})"
                );
            }
        }
    }
}
