//! Graphviz dot rendering of procedure CFGs, for debugging and docs.

use crate::proc::Proc;
use std::fmt::Write as _;

/// Renders `proc`'s CFG as a Graphviz `digraph`.
///
/// Block bodies are included as node labels; edges are annotated `T`/`F` for
/// conditional branches and with the case index for switches.
pub fn proc_to_dot(proc: &Proc) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", proc.name);
    let _ = writeln!(s, "  node [shape=box, fontname=monospace];");
    for (id, block) in proc.iter_blocks() {
        let mut label = format!("{id}\\l");
        for i in &block.instrs {
            let _ = write!(label, "{i}\\l");
        }
        let _ = write!(label, "{}\\l", block.term);
        let label = label.replace('"', "\\\"");
        let _ = writeln!(s, "  {id} [label=\"{label}\"];");
        match &block.term {
            crate::instr::Terminator::Jump { target } => {
                let _ = writeln!(s, "  {id} -> {target};");
            }
            crate::instr::Terminator::Branch { taken, not_taken, .. } => {
                let _ = writeln!(s, "  {id} -> {taken} [label=\"T\"];");
                let _ = writeln!(s, "  {id} -> {not_taken} [label=\"F\"];");
            }
            crate::instr::Terminator::Switch { targets, default, .. } => {
                for (i, t) in targets.iter().enumerate() {
                    let _ = writeln!(s, "  {id} -> {t} [label=\"{i}\"];");
                }
                let _ = writeln!(s, "  {id} -> {default} [label=\"d\"];");
            }
            crate::instr::Terminator::Return { .. } => {}
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::proc::Reg;

    #[test]
    fn dot_output_contains_blocks_and_edges() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.ret(None);
        f.switch_to(b);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let dot = proc_to_dot(p.proc(p.entry));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("b0 -> b1 [label=\"T\"]"));
        assert!(dot.contains("b0 -> b2 [label=\"F\"]"));
    }
}
