//! Structural verification of programs.
//!
//! The pipeline verifies programs after every transformation pass; a
//! verifier failure indicates a transformation bug, caught close to its
//! source rather than as a baffling interpreter divergence.

use crate::instr::Instr;
use crate::program::{ProcId, Program};
use std::error::Error;
use std::fmt;

/// A structural defect found by [`verify_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator targets a block index that does not exist.
    BadBlockTarget {
        /// Procedure containing the defect.
        proc: ProcId,
        /// Offending target index.
        target: u32,
    },
    /// An instruction or terminator references a register `>= reg_count`.
    BadRegister {
        /// Procedure containing the defect.
        proc: ProcId,
        /// Offending register index.
        reg: u32,
    },
    /// A call references a procedure that does not exist.
    BadCallee {
        /// Procedure containing the defect.
        proc: ProcId,
        /// Offending callee index.
        callee: u32,
    },
    /// A call passes the wrong number of arguments.
    CallArity {
        /// Procedure containing the defect.
        proc: ProcId,
        /// Callee whose arity is violated.
        callee: ProcId,
        /// Expected parameter count.
        expected: u32,
        /// Provided argument count.
        got: usize,
    },
    /// The entry procedure id is out of range.
    BadEntry,
    /// A procedure has no blocks.
    EmptyProc {
        /// The empty procedure.
        proc: ProcId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadBlockTarget { proc, target } => {
                write!(f, "{proc}: terminator targets nonexistent block b{target}")
            }
            VerifyError::BadRegister { proc, reg } => {
                write!(f, "{proc}: register r{reg} out of range")
            }
            VerifyError::BadCallee { proc, callee } => {
                write!(f, "{proc}: call to nonexistent procedure p{callee}")
            }
            VerifyError::CallArity { proc, callee, expected, got } => {
                write!(f, "{proc}: call to {callee} expects {expected} args, got {got}")
            }
            VerifyError::BadEntry => write!(f, "entry procedure id out of range"),
            VerifyError::EmptyProc { proc } => write!(f, "{proc} has no blocks"),
        }
    }
}

impl Error for VerifyError {}

/// Checks structural well-formedness of a program.
///
/// # Errors
/// Returns the first defect found, if any.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    if program.entry.index() >= program.procs.len() {
        return Err(VerifyError::BadEntry);
    }
    for (pid, proc) in program.iter_procs() {
        if proc.blocks.is_empty() {
            return Err(VerifyError::EmptyProc { proc: pid });
        }
        let nblocks = proc.blocks.len() as u32;
        let check_reg = |r: crate::proc::Reg| -> Result<(), VerifyError> {
            if (r.index() as u32) < proc.reg_count {
                Ok(())
            } else {
                Err(VerifyError::BadRegister { proc: pid, reg: r.index() as u32 })
            }
        };
        if proc.entry.index() as u32 >= nblocks {
            return Err(VerifyError::BadBlockTarget { proc: pid, target: proc.entry.index() as u32 });
        }
        for (_, block) in proc.iter_blocks() {
            for instr in &block.instrs {
                for r in instr.uses() {
                    check_reg(r)?;
                }
                if let Some(d) = instr.dst() {
                    check_reg(d)?;
                }
                if let Instr::Call { callee, args, .. } = instr {
                    if callee.index() >= program.procs.len() {
                        return Err(VerifyError::BadCallee {
                            proc: pid,
                            callee: callee.index() as u32,
                        });
                    }
                    let callee_proc = program.proc(*callee);
                    if callee_proc.num_params as usize != args.len() {
                        return Err(VerifyError::CallArity {
                            proc: pid,
                            callee: *callee,
                            expected: callee_proc.num_params,
                            got: args.len(),
                        });
                    }
                }
            }
            for r in block.term.uses() {
                check_reg(r)?;
            }
            for t in block.term.successors() {
                if t.index() as u32 >= nblocks {
                    return Err(VerifyError::BadBlockTarget {
                        proc: pid,
                        target: t.index() as u32,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{Operand, Terminator};
    use crate::proc::{BlockId, Reg};

    fn good() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        f.out(Operand::Imm(1));
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn well_formed_passes() {
        assert_eq!(verify_program(&good()), Ok(()));
    }

    #[test]
    fn bad_block_target_detected() {
        let mut p = good();
        p.proc_mut(p.entry).blocks[0].term = Terminator::Jump { target: BlockId::new(42) };
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadBlockTarget { target: 42, .. })
        ));
    }

    #[test]
    fn bad_register_detected() {
        let mut p = good();
        p.proc_mut(p.entry).blocks[0]
            .instrs
            .push(crate::instr::Instr::Mov { dst: Reg::new(99), src: Operand::Imm(0) });
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadRegister { reg: 99, .. })
        ));
    }

    #[test]
    fn call_arity_detected() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_proc("f", 2);
        let mut g = pb.begin_declared(callee);
        g.ret(None);
        g.finish();
        let mut f = pb.begin_proc("main", 0);
        f.call(callee, vec![Operand::Imm(1)], None); // wrong: needs 2 args
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::CallArity { expected: 2, got: 1, .. })
        ));
    }
}
