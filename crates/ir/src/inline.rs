//! Procedure inlining: the IR mutator under interprocedural superblock
//! formation (`Px4`).
//!
//! [`inline_call`] splices a copy of a callee's body into its caller at one
//! call site. Registers are procedure-local, so the clone's registers are
//! renumbered above the caller's existing file; arguments become `Mov`s
//! into the renumbered parameter registers, and every `Return` becomes a
//! jump to the continuation block (writing the call's destination register
//! first — 0 when the callee returns nothing, matching the interpreter's
//! call semantics). Only the caller is mutated; generation stamping happens
//! automatically through [`Proc::push_block`] / [`Proc::block_mut`], so
//! memoized analyses invalidate themselves.
//!
//! Inlining is one level deep by construction: calls *inside* the cloned
//! body still call their callees normally, which also makes inlining a
//! recursive callee semantically safe (the clone's self-call simply
//! recurses).

use crate::instr::{Instr, Operand, Terminator};
use crate::proc::{Block, BlockId, Proc, Reg};
use crate::program::ProcId;
use std::error::Error;
use std::fmt;

/// The machine register-file cap the renumbered clone must fit under (the
/// compactor's renamer and `pps-machine` both assume it).
pub const REG_FILE_CAP: u32 = 128;

/// Why a call site cannot be inlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The named instruction is not a `Call`.
    NotACall {
        /// Block of the offending site.
        block: BlockId,
        /// Instruction index within the block.
        idx: usize,
    },
    /// The call site passes a different number of arguments than the
    /// callee declares parameters.
    ArityMismatch {
        /// Parameters the callee declares.
        expected: u32,
        /// Arguments the site passes.
        got: usize,
    },
    /// Renumbering the callee's registers above the caller's would
    /// overflow the machine register file.
    RegPressure {
        /// Combined register count required.
        needed: u32,
        /// The file cap ([`REG_FILE_CAP`]).
        cap: u32,
    },
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::NotACall { block, idx } => {
                write!(f, "instruction {idx} of {block} is not a call")
            }
            InlineError::ArityMismatch { expected, got } => {
                write!(f, "call site passes {got} args, callee declares {expected}")
            }
            InlineError::RegPressure { needed, cap } => {
                write!(f, "inlining needs {needed} registers, register file caps at {cap}")
            }
        }
    }
}

impl Error for InlineError {}

/// Every call site of `proc`, in deterministic (block, instruction) order.
pub fn call_sites(proc: &Proc) -> Vec<(BlockId, usize, ProcId)> {
    let mut sites = Vec::new();
    for (bid, block) in proc.iter_blocks() {
        for (idx, instr) in block.instrs.iter().enumerate() {
            if let Instr::Call { callee, .. } = instr {
                sites.push((bid, idx, *callee));
            }
        }
    }
    sites
}

#[inline]
fn shift_reg(r: Reg, off: u32) -> Reg {
    Reg::new(r.index() as u32 + off)
}

#[inline]
fn shift_operand(o: Operand, off: u32) -> Operand {
    match o {
        Operand::Reg(r) => Operand::Reg(shift_reg(r, off)),
        imm @ Operand::Imm(_) => imm,
    }
}

fn shift_instr(instr: &mut Instr, off: u32) {
    match instr {
        Instr::Alu { dst, lhs, rhs, .. } => {
            *dst = shift_reg(*dst, off);
            *lhs = shift_operand(*lhs, off);
            *rhs = shift_operand(*rhs, off);
        }
        Instr::Mov { dst, src } => {
            *dst = shift_reg(*dst, off);
            *src = shift_operand(*src, off);
        }
        Instr::Load { dst, base, .. } => {
            *dst = shift_reg(*dst, off);
            *base = shift_reg(*base, off);
        }
        Instr::Store { src, base, .. } => {
            *src = shift_operand(*src, off);
            *base = shift_reg(*base, off);
        }
        Instr::Call { args, dst, .. } => {
            for a in args.iter_mut() {
                *a = shift_operand(*a, off);
            }
            if let Some(d) = dst {
                *d = shift_reg(*d, off);
            }
        }
        Instr::Out { src } => *src = shift_operand(*src, off),
        Instr::Nop => {}
    }
}

/// Inlines the `Call` at instruction `site_idx` of `site_block` in `proc`,
/// splicing in a renumbered copy of `callee`'s body.
///
/// The caller block is split after the call: its suffix (plus its original
/// terminator) moves to a fresh continuation block, the call becomes
/// argument `Mov`s, and the block now jumps into the clone's entry. Cloned
/// `Return`s write the call's destination register (0 for a bare `ret`
/// when a destination was requested) and jump to the continuation.
///
/// # Errors
/// [`InlineError`] when the site is not a call, arities disagree, or the
/// combined register file would exceed [`REG_FILE_CAP`]. On error, `proc`
/// is unchanged.
pub fn inline_call(
    proc: &mut Proc,
    site_block: BlockId,
    site_idx: usize,
    callee: &Proc,
) -> Result<(), InlineError> {
    let (args, dst) = match proc.block(site_block).instrs.get(site_idx) {
        Some(Instr::Call { args, dst, .. }) => (args.clone(), *dst),
        _ => return Err(InlineError::NotACall { block: site_block, idx: site_idx }),
    };
    if args.len() != callee.num_params as usize {
        return Err(InlineError::ArityMismatch { expected: callee.num_params, got: args.len() });
    }
    let offset = proc.reg_count;
    let needed = offset + callee.reg_count;
    if needed > REG_FILE_CAP {
        return Err(InlineError::RegPressure { needed, cap: REG_FILE_CAP });
    }
    proc.reg_count = needed;

    // Block layout after splicing: the callee's blocks land at
    // `base .. base + n`, the continuation right after them.
    let base = proc.block_ids().count() as u32;
    let n_callee = callee.block_ids().count() as u32;
    let map_block = |b: BlockId| BlockId::new(base + b.index() as u32);
    let cont = BlockId::new(base + n_callee);

    // Split the call site: suffix + original terminator move to the
    // continuation; the call becomes parameter moves + a jump into the
    // clone.
    let inlined_entry = map_block(callee.entry);
    let (tail, old_term) = {
        let block = proc.block_mut(site_block);
        let tail: Vec<Instr> = block.instrs.drain(site_idx + 1..).collect();
        block.instrs.pop(); // the call itself
        for (i, a) in args.iter().enumerate() {
            block
                .instrs
                .push(Instr::Mov { dst: shift_reg(Reg::new(i as u32), offset), src: *a });
        }
        let old_term =
            std::mem::replace(&mut block.term, Terminator::Jump { target: inlined_entry });
        (tail, old_term)
    };

    // Clone the callee body: registers renumbered, targets remapped,
    // returns lowered to (optional) destination writes + continuation
    // jumps.
    for (_, src_block) in callee.iter_blocks() {
        let mut block = src_block.clone();
        for instr in block.instrs.iter_mut() {
            shift_instr(instr, offset);
        }
        block.term = match block.term {
            Terminator::Return { value } => {
                if let Some(d) = dst {
                    let src = value.map_or(Operand::Imm(0), |v| shift_operand(v, offset));
                    block.instrs.push(Instr::Mov { dst: d, src });
                }
                Terminator::Jump { target: cont }
            }
            Terminator::Branch { cond, taken, not_taken } => Terminator::Branch {
                cond: shift_reg(cond, offset),
                taken: map_block(taken),
                not_taken: map_block(not_taken),
            },
            Terminator::Switch { sel, targets, default } => Terminator::Switch {
                sel: shift_reg(sel, offset),
                targets: targets.into_iter().map(map_block).collect(),
                default: map_block(default),
            },
            Terminator::Jump { target } => Terminator::Jump { target: map_block(target) },
        };
        proc.push_block(block);
    }
    proc.push_block(Block::new(tail, old_term));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::{ExecConfig, Interp};
    use crate::verify::verify_program;
    use crate::AluOp;

    /// main(x): calls add3(x) twice and a void helper once; add3 returns
    /// x + 3, the helper just outs a constant.
    fn sample() -> crate::Program {
        let mut pb = ProgramBuilder::new();

        let mut f = pb.begin_proc("add3", 1);
        let x = Reg::new(0); // parameter slot
        let y = f.reg();
        f.alu(AluOp::Add, y, x, 3i64);
        f.ret(Some(Operand::Reg(y)));
        let add3 = f.finish();

        let mut f = pb.begin_proc("shout", 0);
        f.out(7i64);
        f.ret(None);
        let shout = f.finish();

        let mut f = pb.begin_proc("main", 1);
        let x = Reg::new(0); // parameter slot
        let a = f.reg();
        let b = f.reg();
        f.call(add3, vec![Operand::Reg(x)], Some(a));
        f.call(shout, vec![], None);
        f.call(add3, vec![Operand::Reg(a)], Some(b));
        f.out(Operand::Reg(b));
        f.ret(Some(Operand::Reg(b)));
        let main = f.finish();

        pb.finish(main)
    }

    #[test]
    fn inlining_preserves_semantics() {
        let mut p = sample();
        let before = Interp::new(&p, ExecConfig::default()).run(&[10]).unwrap();

        let main = p.entry;
        // Inline every call site of main, re-scanning after each splice
        // (indices shift as blocks split).
        loop {
            let sites = call_sites(p.proc(main));
            let Some(&(block, idx, callee)) = sites.first() else { break };
            let callee_clone = p.proc(callee).clone();
            inline_call(p.proc_mut(main), block, idx, &callee_clone).unwrap();
        }
        assert!(call_sites(p.proc(main)).is_empty());

        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[10]).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(before.return_value, after.return_value);
        // 10 + 3 + 3, via both an out and the return value.
        assert_eq!(after.return_value, Some(16));
    }

    #[test]
    fn errors_leave_caller_unchanged() {
        let mut p = sample();
        let main = p.entry;
        let callee = p.proc(crate::ProcId::new(0)).clone();
        let snapshot = p.proc(main).clone();

        let err = inline_call(p.proc_mut(main), BlockId::new(0), 99, &callee).unwrap_err();
        assert!(matches!(err, InlineError::NotACall { .. }));
        assert_eq!(*p.proc(main), snapshot);

        let mut fat = callee.clone();
        fat.reg_count = REG_FILE_CAP;
        let sites = call_sites(p.proc(main));
        let (block, idx, _) = sites[0];
        let err = inline_call(p.proc_mut(main), block, idx, &fat).unwrap_err();
        assert!(matches!(err, InlineError::RegPressure { .. }));
        assert_eq!(*p.proc(main), snapshot);
    }
}
