//! Procedures, basic blocks, and their identifiers.

use crate::instr::{Instr, Terminator};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of mutation generations. Every mutation stamps the
/// procedure with a nonce that has never been handed out before, so a
/// generation number names exactly one observed body — even across
/// clone/rollback cycles (a restored snapshot keeps the generation its
/// content was stamped with, and any later mutation gets a fresh one).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// A virtual/architectural integer register within a procedure.
///
/// Registers are procedure-local; calls copy argument values into the
/// callee's low registers. The machine model caps the register file at 128
/// (`pps-machine`), which the compactor's renamer respects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u32);

impl Reg {
    /// Creates a register id.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Reg(index)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a basic block within a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id.
    #[inline]
    pub const fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A basic block: straight-line instructions closed by a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Closing control transfer.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given body and terminator.
    pub fn new(instrs: Vec<Instr>, term: Terminator) -> Self {
        Block { instrs, term }
    }

    /// Number of instructions including the terminator, i.e. the block's
    /// contribution to static code size.
    pub fn len_with_term(&self) -> usize {
        self.instrs.len() + 1
    }
}

/// A procedure: an entry block plus a control-flow graph of basic blocks.
#[derive(Debug, Clone)]
pub struct Proc {
    /// Human-readable name (for reports and dot output).
    pub name: String,
    /// Number of parameters; arguments arrive in registers `r0..rN-1`.
    pub num_params: u32,
    /// Number of registers used; all `Reg` indices are below this.
    pub reg_count: u32,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Mutation generation (see [`Proc::generation`]). Not part of the
    /// procedure's identity: equality ignores it, clones keep it (a clone
    /// has the same body, so analyses cached for it stay valid).
    generation: u64,
}

impl PartialEq for Proc {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.num_params == other.num_params
            && self.reg_count == other.reg_count
            && self.blocks == other.blocks
            && self.entry == other.entry
    }
}

impl Eq for Proc {}

impl Proc {
    /// Creates an empty procedure shell. Blocks must be added before use.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        Proc {
            name: name.into(),
            num_params,
            reg_count: num_params,
            blocks: Vec::new(),
            entry: BlockId::new(0),
            generation: fresh_generation(),
        }
    }

    /// The procedure's mutation generation: a process-unique nonce that
    /// changes on every mutating access ([`Proc::block_mut`],
    /// [`Proc::push_block`], [`Proc::touch`]). Two observations of the same
    /// generation on the same procedure are guaranteed to have seen the
    /// same body, which makes CFG analyses cacheable
    /// (see [`crate::cache::AnalysisCache`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stamps a fresh generation. Call after mutating `blocks` directly
    /// (the field is public); the tracked mutators call this themselves.
    #[inline]
    pub fn touch(&mut self) {
        self.generation = fresh_generation();
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.touch();
        &mut self.blocks[id.index()]
    }

    /// Appends a block and returns its id.
    pub fn push_block(&mut self, block: Block) -> BlockId {
        self.touch();
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Allocates a fresh register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg::new(self.reg_count);
        self.reg_count += 1;
        r
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// All block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// Static instruction count (instructions + terminators).
    pub fn static_size(&self) -> usize {
        self.blocks.iter().map(Block::len_with_term).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Operand, Terminator};

    #[test]
    fn proc_block_management() {
        let mut p = Proc::new("f", 2);
        assert_eq!(p.reg_count, 2);
        let b0 = p.push_block(Block::new(vec![], Terminator::Return { value: None }));
        let b1 = p.push_block(Block::new(
            vec![Instr::Nop],
            Terminator::Jump { target: b0 },
        ));
        assert_eq!(b0.index(), 0);
        assert_eq!(b1.index(), 1);
        assert_eq!(p.block(b1).instrs.len(), 1);
        assert_eq!(p.static_size(), 3);
        let r = p.fresh_reg();
        assert_eq!(r, Reg::new(2));
        assert_eq!(p.reg_count, 3);
    }

    #[test]
    fn generation_changes_on_mutation_and_is_process_unique() {
        let mut p = Proc::new("f", 0);
        let g0 = p.generation();
        p.push_block(Block::new(vec![], Terminator::Return { value: None }));
        let g1 = p.generation();
        assert_ne!(g0, g1);
        let _ = p.block_mut(BlockId::new(0));
        let g2 = p.generation();
        assert_ne!(g1, g2);
        // Shared access leaves the generation alone.
        let _ = p.block(BlockId::new(0));
        assert_eq!(p.generation(), g2);
        // Clones keep the generation (same body), and equality ignores it.
        let mut q = p.clone();
        assert_eq!(q.generation(), g2);
        assert_eq!(p, q);
        q.touch();
        assert_ne!(q.generation(), g2);
        assert_eq!(p, q, "touch alone does not change identity");
        // A rolled-back snapshot never aliases a post-mutation generation.
        let snapshot = p.clone();
        let _ = p.block_mut(BlockId::new(0));
        assert_ne!(p.generation(), snapshot.generation());
        p = snapshot;
        assert_eq!(p.generation(), g2);
    }

    #[test]
    fn block_len_counts_terminator() {
        let b = Block::new(
            vec![Instr::Nop, Instr::Out { src: Operand::Imm(1) }],
            Terminator::Return { value: None },
        );
        assert_eq!(b.len_with_term(), 3);
    }
}
