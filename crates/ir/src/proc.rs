//! Procedures, basic blocks, and their identifiers.

use crate::instr::{Instr, Terminator};
use std::fmt;

/// A virtual/architectural integer register within a procedure.
///
/// Registers are procedure-local; calls copy argument values into the
/// callee's low registers. The machine model caps the register file at 128
/// (`pps-machine`), which the compactor's renamer respects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u32);

impl Reg {
    /// Creates a register id.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Reg(index)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a basic block within a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id.
    #[inline]
    pub const fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A basic block: straight-line instructions closed by a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Closing control transfer.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given body and terminator.
    pub fn new(instrs: Vec<Instr>, term: Terminator) -> Self {
        Block { instrs, term }
    }

    /// Number of instructions including the terminator, i.e. the block's
    /// contribution to static code size.
    pub fn len_with_term(&self) -> usize {
        self.instrs.len() + 1
    }
}

/// A procedure: an entry block plus a control-flow graph of basic blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proc {
    /// Human-readable name (for reports and dot output).
    pub name: String,
    /// Number of parameters; arguments arrive in registers `r0..rN-1`.
    pub num_params: u32,
    /// Number of registers used; all `Reg` indices are below this.
    pub reg_count: u32,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl Proc {
    /// Creates an empty procedure shell. Blocks must be added before use.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        Proc {
            name: name.into(),
            num_params,
            reg_count: num_params,
            blocks: Vec::new(),
            entry: BlockId::new(0),
        }
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Appends a block and returns its id.
    pub fn push_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Allocates a fresh register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg::new(self.reg_count);
        self.reg_count += 1;
        r
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// All block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId::new)
    }

    /// Static instruction count (instructions + terminators).
    pub fn static_size(&self) -> usize {
        self.blocks.iter().map(Block::len_with_term).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Operand, Terminator};

    #[test]
    fn proc_block_management() {
        let mut p = Proc::new("f", 2);
        assert_eq!(p.reg_count, 2);
        let b0 = p.push_block(Block::new(vec![], Terminator::Return { value: None }));
        let b1 = p.push_block(Block::new(
            vec![Instr::Nop],
            Terminator::Jump { target: b0 },
        ));
        assert_eq!(b0.index(), 0);
        assert_eq!(b1.index(), 1);
        assert_eq!(p.block(b1).instrs.len(), 1);
        assert_eq!(p.static_size(), 3);
        let r = p.fresh_reg();
        assert_eq!(r, Reg::new(2));
        assert_eq!(p.reg_count, 3);
    }

    #[test]
    fn block_len_counts_terminator() {
        let b = Block::new(
            vec![Instr::Nop, Instr::Out { src: Operand::Imm(1) }],
            Terminator::Return { value: None },
        );
        assert_eq!(b.len_with_term(), 3);
    }
}
