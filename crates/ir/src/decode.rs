//! Flat pre-decoded instruction streams for the fast execution engine.
//!
//! The reference interpreter walks the tree-shaped IR directly: `Vec<Block>`
//! → `Vec<Instr>` → enum payloads with heap-allocated operand vectors. That
//! is the clearest possible statement of the semantics, but it costs two
//! bounds-checked indirections plus an operand-shape match per executed
//! instruction. [`DecodedProc`] flattens a procedure into one contiguous
//! [`Op`] array with:
//!
//! - **dense program counters** — every block's body is laid out
//!   back-to-back, terminator included, and control transfers carry the
//!   *resolved* target pc (plus the original [`BlockId`] so trace sinks see
//!   exactly the events the reference engine emits);
//! - **operand-shape specialization** — `reg op reg`, `reg op imm`,
//!   `imm op reg` and constant-foldable forms decode to distinct opcodes,
//!   so the hot dispatch loop is a single match with no nested operand
//!   test (an `Alu` over two immediates decodes to a [`Op::MovImm`] of the
//!   folded value: still one dynamic instruction, same register effect);
//! - **side-table arenas** — call argument lists and switch target tables
//!   live in per-procedure arenas referenced by `(start, len)`, keeping
//!   [`Op`] `Copy` and free of heap payloads.
//!
//! Decoding is *total*: it never inspects whether the procedure would pass
//! the verifier. A control transfer to an out-of-range block decodes to an
//! unresolved target (`pc == u32::MAX`) that panics only if executed —
//! matching the reference engine, which also fails lazily, so
//! fault-injected programs behave identically under both engines.
//!
//! A decoded procedure is a pure function of the procedure body, so it is
//! memoized by [`Proc::generation`] in [`crate::cache::UnitCache`] exactly
//! like CFGs and analyses.

use crate::instr::{AluOp, Instr, Operand, Terminator};
use crate::proc::Proc;
use crate::program::{ProcId, Program};
use std::sync::Arc;

/// Sentinel meaning "no register" / "unresolved pc".
pub(crate) const NONE: u32 = u32::MAX;

/// A call-argument source: register index or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// Read register `0`.
    Reg(u32),
    /// Immediate value.
    Imm(i64),
}

impl Src {
    fn decode(op: Operand) -> Src {
        match op {
            Operand::Reg(r) => Src::Reg(r.index() as u32),
            Operand::Imm(v) => Src::Imm(v),
        }
    }
}

/// A pre-resolved control-transfer target: the pc of the target block's
/// first op, plus the original block id for trace-sink events. An
/// out-of-range block id decodes to `pc == NONE`, which faults (panics)
/// only when the transfer is actually taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Target {
    pub pc: u32,
    pub block: u32,
}

/// One decoded operation. Straight-line instructions and terminators share
/// the stream; a block's ops are contiguous and end with its terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `dst = op(regs[a], regs[b])`.
    AluRR { op: AluOp, dst: u32, a: u32, b: u32 },
    /// `dst = op(regs[a], imm)`.
    AluRI { op: AluOp, dst: u32, a: u32, imm: i64 },
    /// `dst = op(imm, regs[b])`.
    AluIR { op: AluOp, dst: u32, imm: i64, b: u32 },
    /// `dst = imm` (also the folded form of `Alu` over two immediates).
    MovImm { dst: u32, imm: i64 },
    /// `dst = regs[src]`.
    MovReg { dst: u32, src: u32 },
    /// `dst = memory[regs[base] + offset]`, faulting when out of bounds.
    Load { dst: u32, base: u32, offset: i64 },
    /// Speculative load: out of bounds yields 0.
    LoadSpec { dst: u32, base: u32, offset: i64 },
    /// `memory[regs[base] + offset] = regs[src]`.
    StoreR { src: u32, base: u32, offset: i64 },
    /// `memory[regs[base] + offset] = imm`.
    StoreI { imm: i64, base: u32, offset: i64 },
    /// Call `callee` with `args_len` arguments at `args_start` in the
    /// argument arena; `dst == NONE` means no return destination.
    Call { callee: u32, args_start: u32, args_len: u32, dst: u32 },
    /// Append `regs[src]` to the output stream.
    OutR { src: u32 },
    /// Append `imm` to the output stream.
    OutI { imm: i64 },
    /// No operation (still one dynamic instruction).
    Nop,
    /// Unconditional transfer.
    Jump { t: Target },
    /// Two-way branch on `regs[cond] != 0`.
    Branch { cond: u32, taken: Target, not_taken: Target },
    /// Multiway branch: `tab_len` targets at `tab_start` in the switch
    /// arena, else `default`.
    Switch { sel: u32, tab_start: u32, tab_len: u32, default: Target },
    /// Return `regs[src]`.
    RetR { src: u32 },
    /// Return `imm`.
    RetI { imm: i64 },
    /// Return without a value.
    RetNone,
}

/// One procedure decoded into a flat op stream (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProc {
    pub(crate) code: Vec<Op>,
    /// Call-argument arena referenced by [`Op::Call`].
    pub(crate) args: Vec<Src>,
    /// Switch-target arena referenced by [`Op::Switch`].
    pub(crate) switch_targets: Vec<Target>,
    /// Entry block's target (pc + block id).
    pub(crate) entry: Target,
    /// Register-window size for one activation (`reg_count.max(1)`, the
    /// reference engine's allocation rule).
    pub(crate) window: u32,
    /// Parameter count, checked against the entry argument vector.
    pub(crate) num_params: u32,
    /// Generation of the procedure body this was decoded from.
    generation: u64,
}

impl DecodedProc {
    /// Decodes `proc` into a flat op stream. Total: never panics on
    /// malformed bodies — invalid targets fault only when executed.
    pub fn decode(proc: &Proc) -> DecodedProc {
        // First pass: pc of each block's first op.
        let mut block_pc = Vec::with_capacity(proc.blocks.len());
        let mut pc = 0u32;
        for b in &proc.blocks {
            block_pc.push(pc);
            pc += b.len_with_term() as u32;
        }
        let resolve = |b: crate::proc::BlockId| -> Target {
            Target {
                pc: block_pc.get(b.index()).copied().unwrap_or(NONE),
                block: b.index() as u32,
            }
        };

        let mut code = Vec::with_capacity(pc as usize);
        let mut args: Vec<Src> = Vec::new();
        let mut switch_targets: Vec<Target> = Vec::new();
        for b in &proc.blocks {
            for i in &b.instrs {
                code.push(match i {
                    Instr::Alu { op, dst, lhs, rhs } => {
                        let dst = dst.index() as u32;
                        match (lhs, rhs) {
                            (Operand::Reg(a), Operand::Reg(b)) => Op::AluRR {
                                op: *op,
                                dst,
                                a: a.index() as u32,
                                b: b.index() as u32,
                            },
                            (Operand::Reg(a), Operand::Imm(imm)) => Op::AluRI {
                                op: *op,
                                dst,
                                a: a.index() as u32,
                                imm: *imm,
                            },
                            (Operand::Imm(imm), Operand::Reg(b)) => Op::AluIR {
                                op: *op,
                                dst,
                                imm: *imm,
                                b: b.index() as u32,
                            },
                            (Operand::Imm(a), Operand::Imm(b)) => Op::MovImm {
                                dst,
                                imm: op.eval(*a, *b),
                            },
                        }
                    }
                    Instr::Mov { dst, src } => match src {
                        Operand::Reg(r) => Op::MovReg {
                            dst: dst.index() as u32,
                            src: r.index() as u32,
                        },
                        Operand::Imm(v) => Op::MovImm { dst: dst.index() as u32, imm: *v },
                    },
                    Instr::Load { dst, base, offset, speculative } => {
                        let (dst, base) = (dst.index() as u32, base.index() as u32);
                        if *speculative {
                            Op::LoadSpec { dst, base, offset: *offset }
                        } else {
                            Op::Load { dst, base, offset: *offset }
                        }
                    }
                    Instr::Store { src, base, offset } => match src {
                        Operand::Reg(r) => Op::StoreR {
                            src: r.index() as u32,
                            base: base.index() as u32,
                            offset: *offset,
                        },
                        Operand::Imm(v) => Op::StoreI {
                            imm: *v,
                            base: base.index() as u32,
                            offset: *offset,
                        },
                    },
                    Instr::Call { callee, args: call_args, dst } => {
                        let args_start = args.len() as u32;
                        args.extend(call_args.iter().map(|a| Src::decode(*a)));
                        Op::Call {
                            callee: callee.index() as u32,
                            args_start,
                            args_len: call_args.len() as u32,
                            dst: dst.map_or(NONE, |r| r.index() as u32),
                        }
                    }
                    Instr::Out { src } => match src {
                        Operand::Reg(r) => Op::OutR { src: r.index() as u32 },
                        Operand::Imm(v) => Op::OutI { imm: *v },
                    },
                    Instr::Nop => Op::Nop,
                });
            }
            code.push(match &b.term {
                Terminator::Jump { target } => Op::Jump { t: resolve(*target) },
                Terminator::Branch { cond, taken, not_taken } => Op::Branch {
                    cond: cond.index() as u32,
                    taken: resolve(*taken),
                    not_taken: resolve(*not_taken),
                },
                Terminator::Switch { sel, targets, default } => {
                    let tab_start = switch_targets.len() as u32;
                    switch_targets.extend(targets.iter().map(|t| resolve(*t)));
                    Op::Switch {
                        sel: sel.index() as u32,
                        tab_start,
                        tab_len: targets.len() as u32,
                        default: resolve(*default),
                    }
                }
                Terminator::Return { value } => match value {
                    Some(Operand::Reg(r)) => Op::RetR { src: r.index() as u32 },
                    Some(Operand::Imm(v)) => Op::RetI { imm: *v },
                    None => Op::RetNone,
                },
            });
        }

        DecodedProc {
            code,
            args,
            switch_targets,
            entry: resolve(proc.entry),
            window: proc.reg_count.max(1),
            num_params: proc.num_params,
            generation: proc.generation(),
        }
    }

    /// Generation of the procedure body this stream was decoded from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of decoded ops (instructions + terminators).
    pub fn n_ops(&self) -> usize {
        self.code.len()
    }
}

/// A whole program in decoded form, ready for the fast engine.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Decoded procedures, indexed like `Program::procs`.
    pub(crate) procs: Vec<Arc<DecodedProc>>,
    /// Entry procedure.
    pub(crate) entry: ProcId,
}

impl DecodedProgram {
    /// Decodes every procedure of `program` from scratch.
    pub fn decode(program: &Program) -> DecodedProgram {
        DecodedProgram {
            procs: program
                .procs
                .iter()
                .map(|p| Arc::new(DecodedProc::decode(p)))
                .collect(),
            entry: program.entry,
        }
    }

    /// Decodes through `cache`: procedures whose generation is unchanged
    /// reuse the memoized stream; only mutated procedures re-decode.
    pub fn decode_cached(program: &Program, cache: &mut crate::cache::AnalysisCache) -> DecodedProgram {
        DecodedProgram {
            procs: program
                .iter_procs()
                .map(|(pid, proc)| cache.unit_mut(pid).decoded(proc))
                .collect(),
            entry: program.entry,
        }
    }

    /// Total decoded ops over all procedures.
    pub fn n_ops(&self) -> usize {
        self.procs.iter().map(|p| p.n_ops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::proc::BlockId;

    #[test]
    fn decode_flattens_blocks_in_order() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let r = f.reg();
        let next = f.new_block();
        f.mov(r, 7i64);
        f.jump(next);
        f.switch_to(next);
        f.out(r);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let d = DecodedProc::decode(p.proc(p.entry));
        assert_eq!(d.n_ops(), 4, "mov, jump, out, ret + nothing else");
        assert_eq!(d.entry, Target { pc: 0, block: 0 });
        // The jump resolves to the second block's first op.
        assert_eq!(d.code[1], Op::Jump { t: Target { pc: 2, block: 1 } });
        assert_eq!(d.code[2], Op::OutR { src: r.index() as u32 });
    }

    #[test]
    fn alu_over_immediates_folds_to_mov() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let r = f.reg();
        f.alu(AluOp::Add, r, 20i64, 22i64);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let d = DecodedProc::decode(p.proc(p.entry));
        assert_eq!(d.code[0], Op::MovImm { dst: 0, imm: 42 });
    }

    #[test]
    fn out_of_range_target_decodes_unresolved() {
        use crate::instr::Terminator;
        use crate::proc::Block;
        let mut proc = Proc::new("bad", 0);
        proc.push_block(Block::new(
            vec![],
            Terminator::Jump { target: BlockId::new(99) },
        ));
        let d = DecodedProc::decode(&proc);
        assert_eq!(d.code[0], Op::Jump { t: Target { pc: NONE, block: 99 } });
    }

    #[test]
    fn decode_tracks_generation() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let d1 = DecodedProc::decode(p.proc(p.entry));
        assert_eq!(d1.generation(), p.proc(p.entry).generation());
        p.proc_mut(p.entry).touch();
        let d2 = DecodedProc::decode(p.proc(p.entry));
        assert_ne!(d1.generation(), d2.generation());
    }
}
