//! Reference interpreter — the semantic ground truth of the IR.
//!
//! The interpreter executes a [`Program`] with an explicit call stack (so
//! deeply recursive benchmarks cannot overflow the host stack), reports every
//! block entry to a [`TraceSink`], and gathers the dynamic counts the paper's
//! Table 1 reports: branches, instructions (cycles are computed by `pps-sim`
//! from schedules, not here).
//!
//! Semantics notes:
//! - registers are 64-bit signed integers, zero-initialized per activation;
//! - ALU operations are non-excepting (see [`crate::instr::AluOp`]);
//! - a non-speculative load or any store with an out-of-bounds address is a
//!   runtime error; a speculative load out of bounds yields 0;
//! - `Out` appends to the observable output stream, which differential tests
//!   compare across transformations.

use crate::instr::{Instr, Operand, Terminator};
use crate::proc::{BlockId, Reg};
use crate::program::{ProcId, Program};
use crate::trace::{NullSink, TraceSink};
use std::error::Error;
use std::fmt;

/// Limits and options for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum dynamic instruction count before aborting (guards tests and
    /// randomly generated programs against non-termination).
    pub max_instrs: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_instrs: 500_000_000,
            max_call_depth: 100_000,
        }
    }
}

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A non-speculative memory access touched an address outside
    /// `[0, mem_size)`.
    MemoryFault {
        /// Offending address.
        addr: i64,
        /// Procedure where the fault occurred.
        proc: ProcId,
    },
    /// The dynamic instruction budget was exhausted.
    InstrLimit,
    /// The call stack exceeded the configured depth.
    CallDepth,
    /// Wrong number of arguments passed to the entry procedure.
    ArityMismatch {
        /// Expected parameter count.
        expected: u32,
        /// Provided argument count.
        got: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemoryFault { addr, proc } => {
                write!(f, "memory fault at address {addr} in {proc}")
            }
            ExecError::InstrLimit => write!(f, "dynamic instruction limit exceeded"),
            ExecError::CallDepth => write!(f, "call depth limit exceeded"),
            ExecError::ArityMismatch { expected, got } => {
                write!(f, "entry procedure expects {expected} arguments, got {got}")
            }
        }
    }
}

impl Error for ExecError {}

/// Dynamic counts gathered during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynCounts {
    /// Dynamic instructions executed, including terminators.
    pub instrs: u64,
    /// Conditional + multiway branches executed (the paper's "Branches").
    pub branches: u64,
    /// Basic blocks entered.
    pub blocks: u64,
    /// Procedure activations.
    pub calls: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

/// The observable result of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Values emitted by `Out` instructions, in order.
    pub output: Vec<i64>,
    /// Value returned by the entry procedure, if any.
    pub return_value: Option<i64>,
    /// Dynamic counts.
    pub counts: DynCounts,
    /// Final memory image.
    pub memory: Vec<i64>,
}

/// Outcome of [`Interp::run_bounded`]: the observable state at the point
/// execution stopped, plus whether the program actually finished.
///
/// When `completed` is false the run was cut off by `max_instrs`;
/// `result.output` and `result.memory` hold the state produced *so far*
/// (a prefix of a longer run's observables) and `result.return_value` is
/// `None`. This is what the pipeline guard's differential oracle consumes:
/// it can compare output prefixes of truncated runs instead of treating a
/// long-running program as an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedRun {
    /// Observable state when execution stopped.
    pub result: ExecResult,
    /// True if the program ran to completion within the budget.
    pub completed: bool,
}

struct Frame {
    proc: ProcId,
    regs: Vec<i64>,
    block: BlockId,
    instr_idx: usize,
    /// Destination register in the *caller* for the return value.
    ret_dst: Option<Reg>,
}

/// The reference interpreter.
///
/// See the crate-level example for typical use. Construct one per execution;
/// `run` consumes per-run state but the interpreter may be reused.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    config: ExecConfig,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter over `program`.
    pub fn new(program: &'p Program, config: ExecConfig) -> Self {
        Interp { program, config }
    }

    /// Runs the program entry procedure with `args`, discarding the trace.
    ///
    /// # Errors
    /// Returns an [`ExecError`] on memory faults, limit exhaustion, or an
    /// argument-count mismatch.
    pub fn run(&self, args: &[i64]) -> Result<ExecResult, ExecError> {
        self.run_traced(args, &mut NullSink)
    }

    /// Runs the program, reporting every block entry to `sink`.
    ///
    /// # Errors
    /// Returns an [`ExecError`] on memory faults, limit exhaustion, or an
    /// argument-count mismatch.
    pub fn run_traced<S: TraceSink>(
        &self,
        args: &[i64],
        sink: &mut S,
    ) -> Result<ExecResult, ExecError> {
        match self.exec(args, sink)? {
            BoundedRun { completed: true, result } => Ok(result),
            BoundedRun { completed: false, .. } => Err(ExecError::InstrLimit),
        }
    }

    /// Runs the entry procedure with `args`, treating `max_instrs`
    /// exhaustion as a *truncated success* rather than an error.
    ///
    /// # Errors
    /// Returns an [`ExecError`] on memory faults, call-depth exhaustion, or
    /// an argument-count mismatch — never [`ExecError::InstrLimit`].
    pub fn run_bounded(&self, args: &[i64]) -> Result<BoundedRun, ExecError> {
        self.exec(args, &mut NullSink)
    }

    fn exec<S: TraceSink>(&self, args: &[i64], sink: &mut S) -> Result<BoundedRun, ExecError> {
        let program = self.program;
        let entry = program.proc(program.entry);
        if entry.num_params as usize != args.len() {
            return Err(ExecError::ArityMismatch {
                expected: entry.num_params,
                got: args.len(),
            });
        }

        let mut memory = program.initial_memory();
        let mut output = Vec::new();
        let mut counts = DynCounts::default();
        let mut stack: Vec<Frame> = Vec::new();
        let mut return_value: Option<i64> = None;

        let mut regs = vec![0i64; entry.reg_count.max(1) as usize];
        regs[..args.len()].copy_from_slice(args);
        stack.push(Frame {
            proc: program.entry,
            regs,
            block: entry.entry,
            instr_idx: 0,
            ret_dst: None,
        });
        counts.calls += 1;
        sink.enter_proc(program.entry);
        sink.block(program.entry, entry.entry);
        counts.blocks += 1;

        'outer: while !stack.is_empty() {
            let depth = stack.len();
            let frame = stack.last_mut().expect("stack non-empty");
            let proc = program.proc(frame.proc);
            let block = proc.block(frame.block);

            // Execute the remaining straight-line instructions.
            while frame.instr_idx < block.instrs.len() {
                if counts.instrs >= self.config.max_instrs {
                    return Ok(truncated(output, counts, memory));
                }
                counts.instrs += 1;
                let instr = &block.instrs[frame.instr_idx];
                frame.instr_idx += 1;
                match instr {
                    Instr::Alu { op, dst, lhs, rhs } => {
                        let a = read(&frame.regs, *lhs);
                        let b = read(&frame.regs, *rhs);
                        frame.regs[dst.index()] = op.eval(a, b);
                    }
                    Instr::Mov { dst, src } => {
                        frame.regs[dst.index()] = read(&frame.regs, *src);
                    }
                    Instr::Load { dst, base, offset, speculative } => {
                        counts.loads += 1;
                        let addr = frame.regs[base.index()].wrapping_add(*offset);
                        let val = if addr >= 0 && (addr as usize) < memory.len() {
                            memory[addr as usize]
                        } else if *speculative {
                            0
                        } else {
                            return Err(ExecError::MemoryFault { addr, proc: frame.proc });
                        };
                        frame.regs[dst.index()] = val;
                    }
                    Instr::Store { src, base, offset } => {
                        counts.stores += 1;
                        let addr = frame.regs[base.index()].wrapping_add(*offset);
                        if addr >= 0 && (addr as usize) < memory.len() {
                            memory[addr as usize] = read(&frame.regs, *src);
                        } else {
                            return Err(ExecError::MemoryFault { addr, proc: frame.proc });
                        }
                    }
                    Instr::Call { callee, args, dst } => {
                        if depth >= self.config.max_call_depth {
                            return Err(ExecError::CallDepth);
                        }
                        let callee_id = *callee;
                        let callee_proc = program.proc(callee_id);
                        debug_assert_eq!(
                            callee_proc.num_params as usize,
                            args.len(),
                            "call arity mismatch: {} expects {} args, got {}",
                            callee_proc.name,
                            callee_proc.num_params,
                            args.len()
                        );
                        let mut callee_regs = vec![0i64; callee_proc.reg_count.max(1) as usize];
                        for (i, a) in args.iter().enumerate() {
                            callee_regs[i] = read(&frame.regs, *a);
                        }
                        let ret_dst = *dst;
                        let callee_entry = callee_proc.entry;
                        counts.calls += 1;
                        stack.push(Frame {
                            proc: callee_id,
                            regs: callee_regs,
                            block: callee_entry,
                            instr_idx: 0,
                            ret_dst,
                        });
                        sink.enter_proc(callee_id);
                        sink.block(callee_id, callee_entry);
                        counts.blocks += 1;
                        continue 'outer;
                    }
                    Instr::Out { src } => {
                        output.push(read(&frame.regs, *src));
                    }
                    Instr::Nop => {}
                }
            }

            // Terminator.
            if counts.instrs >= self.config.max_instrs {
                return Ok(truncated(output, counts, memory));
            }
            counts.instrs += 1;
            let next = match &block.term {
                Terminator::Jump { target } => Some(*target),
                Terminator::Branch { cond, taken, not_taken } => {
                    counts.branches += 1;
                    if frame.regs[cond.index()] != 0 {
                        Some(*taken)
                    } else {
                        Some(*not_taken)
                    }
                }
                Terminator::Switch { sel, targets, default } => {
                    counts.branches += 1;
                    let v = frame.regs[sel.index()];
                    if v >= 0 && (v as usize) < targets.len() {
                        Some(targets[v as usize])
                    } else {
                        Some(*default)
                    }
                }
                Terminator::Return { value } => {
                    let ret = value.map(|v| read(&frame.regs, v));
                    let finished = stack.pop().expect("frame exists");
                    sink.exit_proc(finished.proc);
                    match stack.last_mut() {
                        Some(caller) => {
                            if let (Some(dst), Some(v)) = (finished.ret_dst, ret) {
                                caller.regs[dst.index()] = v;
                            } else if let Some(dst) = finished.ret_dst {
                                // Callee returned nothing but a destination
                                // was requested: define it as 0.
                                caller.regs[dst.index()] = 0;
                            }
                        }
                        None => return_value = ret,
                    }
                    None
                }
            };

            if let Some(next) = next {
                let frame = stack.last_mut().expect("frame exists");
                frame.block = next;
                frame.instr_idx = 0;
                sink.block(frame.proc, next);
                counts.blocks += 1;
            }
        }

        Ok(BoundedRun {
            result: ExecResult { output, return_value, counts, memory },
            completed: true,
        })
    }
}

/// Packages the observable state of a budget-truncated run.
fn truncated(output: Vec<i64>, counts: DynCounts, memory: Vec<i64>) -> BoundedRun {
    BoundedRun {
        result: ExecResult { output, return_value: None, counts, memory },
        completed: false,
    }
}

#[inline]
fn read(regs: &[i64], op: Operand) -> i64 {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::AluOp;
    use crate::trace::{BlockEvent, VecSink};

    /// main() { out(7); return 3; }
    fn straightline() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        f.out(Operand::Imm(7));
        f.ret(Some(Operand::Imm(3)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn straightline_output_and_return() {
        let p = straightline();
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(r.output, vec![7]);
        assert_eq!(r.return_value, Some(3));
        assert_eq!(r.counts.blocks, 1);
        assert_eq!(r.counts.instrs, 2);
        assert_eq!(r.counts.branches, 0);
    }

    /// main(n) { s = 0; for i in 0..n { s += i }; return s }
    fn loop_sum() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let s = f.reg();
        let i = f.reg();
        let c = f.reg();
        f.mov(s, Operand::Imm(0));
        f.mov(i, Operand::Imm(0));
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, s, Operand::Reg(s), Operand::Reg(i));
        f.alu(AluOp::Add, i, Operand::Reg(i), Operand::Imm(1));
        f.jump(head);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(s)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn loop_sums_correctly() {
        let p = loop_sum();
        let r = Interp::new(&p, ExecConfig::default()).run(&[10]).unwrap();
        assert_eq!(r.return_value, Some(45));
        assert_eq!(r.counts.branches, 11, "one compare-branch per head visit");
    }

    #[test]
    fn trace_events_cover_loop() {
        let p = loop_sum();
        let mut sink = VecSink::new();
        let r = Interp::new(&p, ExecConfig::default())
            .run_traced(&[2], &mut sink)
            .unwrap();
        assert_eq!(r.return_value, Some(1));
        // entry, head, body, head, body, head, exit
        let blocks = sink.blocks();
        assert_eq!(blocks.len(), 7);
        assert_eq!(r.counts.blocks, 7);
        assert!(matches!(sink.events.first(), Some(BlockEvent::Enter(_))));
        assert!(matches!(sink.events.last(), Some(BlockEvent::Exit(_))));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = loop_sum();
        let err = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap_err();
        assert_eq!(err, ExecError::ArityMismatch { expected: 1, got: 0 });
    }

    #[test]
    fn memory_fault_on_oob_store() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        f.mov(a, Operand::Imm(1 << 40));
        f.store(Operand::Imm(1), a, 0);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let err = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap_err();
        assert!(matches!(err, ExecError::MemoryFault { .. }));
    }

    #[test]
    fn speculative_load_oob_yields_zero() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        let v = f.reg();
        f.mov(a, Operand::Imm(-5));
        f.load_spec(v, a, 0);
        f.out(Operand::Reg(v));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(r.output, vec![0]);
    }

    #[test]
    fn instr_limit_stops_infinite_loop() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let head = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.jump(head);
        let main = f.finish();
        let p = pb.finish(main);
        let cfg = ExecConfig { max_instrs: 1000, ..ExecConfig::default() };
        let err = Interp::new(&p, cfg).run(&[]).unwrap_err();
        assert_eq!(err, ExecError::InstrLimit);
    }

    #[test]
    fn bounded_run_truncates_instead_of_erroring() {
        // out(1); out(2); ... in an infinite loop: the bounded run keeps the
        // output prefix produced before the budget ran out.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let head = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.out(Operand::Imm(1));
        f.jump(head);
        let main = f.finish();
        let p = pb.finish(main);
        let cfg = ExecConfig { max_instrs: 100, ..ExecConfig::default() };
        let b = Interp::new(&p, cfg).run_bounded(&[]).unwrap();
        assert!(!b.completed);
        assert!(!b.result.output.is_empty());
        assert_eq!(b.result.return_value, None);
        assert!(b.result.counts.instrs <= 100);

        // A terminating program completes with identical observables to
        // `run`.
        let p = loop_sum();
        let full = Interp::new(&p, ExecConfig::default()).run(&[10]).unwrap();
        let b = Interp::new(&p, ExecConfig::default()).run_bounded(&[10]).unwrap();
        assert!(b.completed);
        assert_eq!(b.result, full);
    }

    #[test]
    fn recursion_executes_with_explicit_stack() {
        // f(n) = n == 0 ? 0 : n + f(n-1)
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare_proc("f", 1);
        let mut f = pb.begin_proc("main", 0);
        let r = f.reg();
        f.call(fid, vec![Operand::Imm(300)], Some(r));
        f.ret(Some(Operand::Reg(r)));
        let main = f.finish();

        let mut g = pb.begin_declared(fid);
        let n = Reg::new(0);
        let c = g.reg();
        let rec = g.reg();
        let base = g.new_block();
        let step = g.new_block();
        g.alu(AluOp::CmpEq, c, Operand::Reg(n), Operand::Imm(0));
        g.branch(c, base, step);
        g.switch_to(base);
        g.ret(Some(Operand::Imm(0)));
        g.switch_to(step);
        let m = g.reg();
        g.alu(AluOp::Sub, m, Operand::Reg(n), Operand::Imm(1));
        g.call(fid, vec![Operand::Reg(m)], Some(rec));
        let s = g.reg();
        g.alu(AluOp::Add, s, Operand::Reg(n), Operand::Reg(rec));
        g.ret(Some(Operand::Reg(s)));
        g.finish();

        let p = pb.finish(main);
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(r.return_value, Some(300 * 301 / 2));
    }

    #[test]
    fn call_depth_limit_enforced() {
        // f() { f() }
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare_proc("f", 0);
        let mut f = pb.begin_proc("main", 0);
        f.call(fid, vec![], None);
        f.ret(None);
        let main = f.finish();
        let mut g = pb.begin_declared(fid);
        g.call(fid, vec![], None);
        g.ret(None);
        g.finish();
        let p = pb.finish(main);
        let cfg = ExecConfig { max_call_depth: 64, ..ExecConfig::default() };
        let err = Interp::new(&p, cfg).run(&[]).unwrap_err();
        assert_eq!(err, ExecError::CallDepth);
    }

    #[test]
    fn switch_selects_and_defaults() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let sel = Reg::new(0);
        let c0 = f.new_block();
        let c1 = f.new_block();
        let dfl = f.new_block();
        f.switch(sel, vec![c0, c1], dfl);
        for (b, v) in [(c0, 100), (c1, 101), (dfl, 999)] {
            f.switch_to(b);
            f.out(Operand::Imm(v));
            f.ret(None);
        }
        let main = f.finish();
        let p = pb.finish(main);
        let interp = Interp::new(&p, ExecConfig::default());
        assert_eq!(interp.run(&[0]).unwrap().output, vec![100]);
        assert_eq!(interp.run(&[1]).unwrap().output, vec![101]);
        assert_eq!(interp.run(&[2]).unwrap().output, vec![999]);
        assert_eq!(interp.run(&[-7]).unwrap().output, vec![999]);
    }
}
