//! Canonical content hashing of the IR, plus the repo-wide hash
//! primitives.
//!
//! Two distinct jobs live here:
//!
//! 1. **Primitives** — [`fnv1a32`], [`fnv1a64`] and [`splitmix64`] are the
//!    one shared home for the FNV-1a / splitmix64 arithmetic that used to
//!    be copied independently into the serve frame checksum, the harness
//!    fault seed, and the loadgen retry jitter. `pps_core::hash` re-exports
//!    them for the higher layers.
//! 2. **Structural hashing** — [`proc_hash`] / [`program_hash`] give a
//!    [`Proc`]/[`Program`] a canonical 64-bit content identity: two values
//!    hash equal iff they compare equal, which means the hash covers
//!    exactly what `PartialEq` covers (name, params, register count,
//!    blocks, entry) and deliberately ignores the mutation generation
//!    nonce. The fold walks the IR in its defined order with a type tag
//!    per node, so the hash is stable across clone, text serialize →
//!    deserialize, and process restarts — unlike the generation nonce,
//!    which is process-local and never repeats.
//!
//! The structural hash is what [`crate::cache::UnitCache::structural_hash`]
//! memoizes per mutation generation: recomputing it costs a full IR walk,
//! but within one generation the body cannot have changed, so the memo is
//! exact.

use crate::instr::{Instr, Operand, Terminator};
use crate::proc::{Block, Proc};
use crate::program::Program;

/// FNV-1a offset basis, 32-bit.
pub const FNV32_OFFSET: u32 = 0x811c_9dc5;
/// FNV-1a prime, 32-bit.
pub const FNV32_PRIME: u32 = 0x0100_0193;
/// FNV-1a offset basis, 64-bit.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime, 64-bit.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, 32-bit. This is the PPSF frame checksum.
#[inline]
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// FNV-1a over a byte slice, 64-bit.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// The splitmix64 finalizer: a cheap, high-quality 64→64 bit mixer.
/// Shared by the loadgen retry jitter and the consistent-hash ring.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An incremental FNV-1a-64 fold with typed writes. Every write is
/// length- or tag-delimited so adjacent fields cannot alias (e.g. the
/// strings `"ab" + "c"` and `"a" + "bc"` fold differently).
#[derive(Debug, Clone)]
pub struct Fold {
    state: u64,
}

impl Fold {
    /// A fold seeded with the FNV-1a-64 offset basis.
    #[inline]
    pub fn new() -> Self {
        Fold { state: FNV64_OFFSET }
    }

    /// Folds in raw bytes (not self-delimiting; callers tag or
    /// length-prefix).
    #[inline]
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV64_PRIME);
        }
        self
    }

    /// Folds in one byte, typically a variant tag.
    #[inline]
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.bytes(&[t])
    }

    /// Folds in a `u32` (little-endian).
    #[inline]
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds in a `u64` (little-endian).
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds in an `i64` (little-endian two's complement).
    #[inline]
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds in a string, length-prefixed.
    #[inline]
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// The accumulated hash, passed through [`splitmix64`] so that short
    /// inputs still diffuse into all 64 bits.
    #[inline]
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

impl Default for Fold {
    fn default() -> Self {
        Fold::new()
    }
}

fn fold_operand(f: &mut Fold, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            f.tag(0).u32(r.index() as u32);
        }
        Operand::Imm(v) => {
            f.tag(1).i64(*v);
        }
    }
}

fn fold_instr(f: &mut Fold, i: &Instr) {
    match i {
        Instr::Alu { op, dst, lhs, rhs } => {
            f.tag(0).u32(*op as u32).u32(dst.index() as u32);
            fold_operand(f, lhs);
            fold_operand(f, rhs);
        }
        Instr::Mov { dst, src } => {
            f.tag(1).u32(dst.index() as u32);
            fold_operand(f, src);
        }
        Instr::Load { dst, base, offset, speculative } => {
            f.tag(2)
                .u32(dst.index() as u32)
                .u32(base.index() as u32)
                .i64(*offset)
                .tag(u8::from(*speculative));
        }
        Instr::Store { src, base, offset } => {
            f.tag(3);
            fold_operand(f, src);
            f.u32(base.index() as u32).i64(*offset);
        }
        Instr::Call { callee, args, dst } => {
            f.tag(4).u32(callee.index() as u32).u64(args.len() as u64);
            for a in args {
                fold_operand(f, a);
            }
            match dst {
                Some(d) => f.tag(1).u32(d.index() as u32),
                None => f.tag(0),
            };
        }
        Instr::Out { src } => {
            f.tag(5);
            fold_operand(f, src);
        }
        Instr::Nop => {
            f.tag(6);
        }
    }
}

fn fold_terminator(f: &mut Fold, t: &Terminator) {
    match t {
        Terminator::Jump { target } => {
            f.tag(0).u32(target.index() as u32);
        }
        Terminator::Branch { cond, taken, not_taken } => {
            f.tag(1)
                .u32(cond.index() as u32)
                .u32(taken.index() as u32)
                .u32(not_taken.index() as u32);
        }
        Terminator::Switch { sel, targets, default } => {
            f.tag(2).u32(sel.index() as u32).u64(targets.len() as u64);
            for t in targets {
                f.u32(t.index() as u32);
            }
            f.u32(default.index() as u32);
        }
        Terminator::Return { value } => {
            f.tag(3);
            match value {
                Some(v) => {
                    f.tag(1);
                    fold_operand(f, v);
                }
                None => {
                    f.tag(0);
                }
            }
        }
    }
}

fn fold_block(f: &mut Fold, b: &Block) {
    f.u64(b.instrs.len() as u64);
    for i in &b.instrs {
        fold_instr(f, i);
    }
    fold_terminator(f, &b.term);
}

/// Folds a procedure's content (everything `PartialEq` compares, nothing
/// it ignores) into `f`. Exposed so [`program_hash`] and the memoized
/// per-unit hash agree on the per-procedure encoding.
pub fn fold_proc(f: &mut Fold, p: &Proc) {
    f.str(&p.name)
        .u32(p.num_params)
        .u32(p.reg_count)
        .u32(p.entry.index() as u32)
        .u64(p.blocks.len() as u64);
    for b in &p.blocks {
        fold_block(f, b);
    }
}

/// Canonical structural hash of one procedure.
///
/// Equal procedures (by `PartialEq`, which ignores the mutation
/// generation) hash equal; the hash survives clone, text round-trips, and
/// process restarts. Prefer the memoized
/// [`crate::cache::UnitCache::structural_hash`] when a cache is at hand.
pub fn proc_hash(p: &Proc) -> u64 {
    let mut f = Fold::new();
    fold_proc(&mut f, p);
    f.finish()
}

/// Canonical structural hash of a whole program: the per-procedure hashes
/// in procedure order, then the entry id, memory size, and data section.
///
/// Built from [`proc_hash`] values (rather than one flat fold) so a
/// caller holding memoized per-procedure hashes can combine them with
/// [`combine_program_hash`] and get the identical result.
pub fn program_hash(p: &Program) -> u64 {
    combine_program_hash(
        p.procs.iter().map(proc_hash),
        p.entry.index() as u32,
        p.mem_size,
        &p.data,
    )
}

/// Combines already-computed per-procedure hashes into the program hash.
/// `program_hash` is exactly this over freshly computed [`proc_hash`]es.
pub fn combine_program_hash(
    proc_hashes: impl Iterator<Item = u64>,
    entry_index: u32,
    mem_size: usize,
    data: &[i64],
) -> u64 {
    let mut f = Fold::new();
    let mut n: u64 = 0;
    for h in proc_hashes {
        f.u64(h);
        n += 1;
    }
    f.u64(n).u32(entry_index).u64(mem_size as u64).u64(data.len() as u64);
    for &d in data {
        f.i64(d);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::AluOp;
    use crate::proc::BlockId;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let r = f.reg();
        f.alu(AluOp::Add, r, Operand::Reg(crate::Reg::new(0)), Operand::Imm(7));
        f.out(Operand::Reg(r));
        f.ret(Some(Operand::Reg(r)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn fnv_test_vectors() {
        // Classic FNV-1a vectors.
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn splitmix_is_a_bijection_sample() {
        // Distinct inputs must give distinct outputs (spot-check).
        let outs: Vec<u64> = (0..64).map(splitmix64).collect();
        for (i, a) in outs.iter().enumerate() {
            for b in &outs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn clone_and_touch_preserve_hash() {
        let p = sample();
        let h = program_hash(&p);
        let mut q = p.clone();
        assert_eq!(program_hash(&q), h, "clone hashes identically");
        q.proc_mut(q.entry).touch();
        assert_eq!(program_hash(&q), h, "generation churn does not change content");
    }

    #[test]
    fn mutation_changes_hash() {
        let p = sample();
        let h = program_hash(&p);
        let mut q = p.clone();
        q.proc_mut(q.entry).block_mut(BlockId::new(0)).instrs.push(Instr::Nop);
        assert_ne!(program_hash(&q), h);
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        // Same flattened bytes, different field split.
        let mut a = Fold::new();
        a.str("ab").str("c");
        let mut b = Fold::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_matches_flat_program_hash() {
        let p = sample();
        let combined = combine_program_hash(
            p.procs.iter().map(proc_hash),
            p.entry.index() as u32,
            p.mem_size,
            &p.data,
        );
        assert_eq!(combined, program_hash(&p));
    }

    #[test]
    fn speculative_flag_is_part_of_identity() {
        let mk = |spec| {
            let mut p = Proc::new("f", 1);
            p.push_block(Block::new(
                vec![Instr::Load {
                    dst: crate::Reg::new(0),
                    base: crate::Reg::new(0),
                    offset: 0,
                    speculative: spec,
                }],
                Terminator::Return { value: None },
            ));
            p
        };
        assert_ne!(proc_hash(&mk(false)), proc_hash(&mk(true)));
    }
}
