//! Textual IR: a human-readable format with a printer and parser.
//!
//! The format round-trips exactly: `parse(print(p)) == p`. It is the
//! format used by the `pps-explore` tool, handy for writing test inputs by
//! hand and for diffing transformed programs.
//!
//! ```text
//! program entry=main mem=1024
//! data 1 2 3
//!
//! proc main(1) regs=4 entry=b0 {
//! b0:
//!   r1 = add r0, #1
//!   r2 = load [r1+0]
//!   store r2, [r1+4]
//!   out r2
//!   br r2 ? b1 : b2
//! b1:
//!   r3 = call helper(r2)
//!   jump b2
//! b2:
//!   ret r1
//! }
//!
//! proc helper(1) regs=2 entry=b0 {
//! b0:
//!   r1 = mul r0, #3
//!   ret r1
//! }
//! ```
//!
//! Lines starting with `;` (or blank) are ignored. Instruction syntax is
//! exactly the crate's `Display` output, so printed programs always parse.

use crate::instr::{AluOp, Instr, Operand, Terminator};
use crate::proc::{Block, BlockId, Proc, Reg};
use crate::program::{ProcId, Program};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Prints a whole program in the textual format.
pub fn print_program(program: &Program) -> String {
    let mut s = String::new();
    let entry_name = &program.proc(program.entry).name;
    let _ = writeln!(s, "program entry={} mem={}", entry_name, program.mem_size);
    if !program.data.is_empty() {
        let _ = write!(s, "data");
        for v in &program.data {
            let _ = write!(s, " {v}");
        }
        let _ = writeln!(s);
    }
    for (_, proc) in program.iter_procs() {
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "proc {}({}) regs={} entry={} {{",
            proc.name, proc.num_params, proc.reg_count, proc.entry
        );
        for (bid, block) in proc.iter_blocks() {
            let _ = writeln!(s, "{bid}:");
            for instr in &block.instrs {
                let _ = writeln!(s, "  {}", display_instr(instr, program));
            }
            let _ = writeln!(s, "  {}", block.term);
        }
        let _ = writeln!(s, "}}");
    }
    s
}

/// Instruction display, with procedure names substituted into calls.
fn display_instr(instr: &Instr, program: &Program) -> String {
    match instr {
        Instr::Call { callee, args, dst } => {
            let name = &program.proc(*callee).name;
            let mut s = String::new();
            if let Some(d) = dst {
                let _ = write!(s, "{d} = call {name}(");
            } else {
                let _ = write!(s, "call {name}(");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{a}");
            }
            s.push(')');
            s
        }
        other => other.to_string(),
    }
}

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// Parses the textual format back into a [`Program`].
///
/// # Errors
/// Returns a [`ParseError`] with the offending line on malformed input,
/// unknown procedure or block references, or a missing entry procedure.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'))
        .collect();
    let mut it = lines.into_iter().peekable();

    // Header.
    let Some((ln, header)) = it.next() else {
        return err(0, "empty input");
    };
    let (entry_name, mem_size) = parse_header(ln, header)?;

    // Optional data line(s).
    let mut data: Vec<i64> = Vec::new();
    while let Some(&(ln, l)) = it.peek() {
        if let Some(rest) = l.strip_prefix("data") {
            for tok in rest.split_whitespace() {
                match tok.parse::<i64>() {
                    Ok(v) => data.push(v),
                    Err(_) => return err(ln, format!("bad data value `{tok}`")),
                }
            }
            it.next();
        } else {
            break;
        }
    }

    // First pass: scan proc declarations to build the name table (so calls
    // can be forward references).
    #[allow(clippy::type_complexity)]
    let mut raw_procs: Vec<(usize, String, u32, u32, u32, Vec<(usize, String)>)> = Vec::new();
    while let Some((ln, l)) = it.next() {
        let Some(rest) = l.strip_prefix("proc ") else {
            return err(ln, format!("expected `proc`, got `{l}`"));
        };
        let (name, nparams, regs, entry) = parse_proc_header(ln, rest)?;
        let mut body: Vec<(usize, String)> = Vec::new();
        let mut closed = false;
        for (ln2, l2) in it.by_ref() {
            if l2 == "}" {
                closed = true;
                break;
            }
            body.push((ln2, l2.to_string()));
        }
        if !closed {
            return err(ln, format!("proc `{name}` missing closing `}}`"));
        }
        raw_procs.push((ln, name, nparams, regs, entry, body));
    }
    let proc_names: HashMap<String, ProcId> = raw_procs
        .iter()
        .enumerate()
        .map(|(i, (_, name, ..))| (name.clone(), ProcId::new(i as u32)))
        .collect();
    if proc_names.len() != raw_procs.len() {
        return err(0, "duplicate procedure name");
    }

    // Second pass: parse bodies.
    let mut procs = Vec::with_capacity(raw_procs.len());
    for (ln, name, nparams, regs, entry, body) in raw_procs {
        let mut proc = Proc::new(name, nparams);
        proc.reg_count = regs;
        let mut cur: Option<(Vec<Instr>, usize)> = None;
        let mut blocks: Vec<(Block, usize)> = Vec::new();
        for (ln2, l2) in body {
            if let Some(label) = l2.strip_suffix(':') {
                if cur.is_some() {
                    return err(ln2, "previous block missing terminator");
                }
                let idx = parse_block_ref(ln2, label)?;
                cur = Some((Vec::new(), idx as usize));
                continue;
            }
            let Some((ref mut instrs, _)) = cur else {
                return err(ln2, "instruction outside a block");
            };
            match parse_line(ln2, &l2, &proc_names)? {
                Line::Instr(i) => instrs.push(i),
                Line::Term(t) => {
                    let (instrs, idx) = cur.take().expect("open block");
                    blocks.push((Block::new(instrs, t), idx));
                }
            }
        }
        if cur.is_some() {
            return err(ln, "last block missing terminator");
        }
        // Blocks must be declared densely in order b0, b1, ...
        for (i, (_, idx)) in blocks.iter().enumerate() {
            if *idx != i {
                return err(ln, format!("block b{idx} out of order (expected b{i})"));
            }
        }
        proc.blocks = blocks.into_iter().map(|(b, _)| b).collect();
        if entry as usize >= proc.blocks.len() {
            return err(ln, format!("entry b{entry} out of range"));
        }
        proc.entry = BlockId::new(entry);
        procs.push(proc);
    }

    let Some(&entry) = proc_names.get(&entry_name) else {
        return err(0, format!("entry procedure `{entry_name}` not defined"));
    };
    if data.len() > mem_size {
        return err(0, "data section exceeds mem size");
    }
    Ok(Program::new(procs, entry, mem_size, data))
}

fn parse_header(ln: usize, l: &str) -> Result<(String, usize), ParseError> {
    let Some(rest) = l.strip_prefix("program ") else {
        return err(ln, format!("expected `program`, got `{l}`"));
    };
    let mut entry = None;
    let mut mem = None;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("entry=") {
            entry = Some(v.to_string());
        } else if let Some(v) = tok.strip_prefix("mem=") {
            mem = v.parse().ok();
        } else {
            return err(ln, format!("unknown program attribute `{tok}`"));
        }
    }
    match (entry, mem) {
        (Some(e), Some(m)) => Ok((e, m)),
        _ => err(ln, "program header needs entry= and mem="),
    }
}

fn parse_proc_header(ln: usize, rest: &str) -> Result<(String, u32, u32, u32), ParseError> {
    // `<name>(<n>) regs=<r> entry=b<k> {`
    let Some(open) = rest.find('(') else {
        return err(ln, "proc header missing `(`");
    };
    let name = rest[..open].trim().to_string();
    let Some(close) = rest.find(')') else {
        return err(ln, "proc header missing `)`");
    };
    let nparams: u32 = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseError { line: ln, message: "bad parameter count".into() })?;
    let mut regs = None;
    let mut entry = None;
    for tok in rest[close + 1..].split_whitespace() {
        if let Some(v) = tok.strip_prefix("regs=") {
            regs = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix("entry=") {
            entry = v.strip_prefix('b').and_then(|x| x.parse().ok());
        } else if tok == "{" {
        } else {
            return err(ln, format!("unknown proc attribute `{tok}`"));
        }
    }
    match (regs, entry) {
        (Some(r), Some(e)) => Ok((name, nparams, r, e)),
        _ => err(ln, "proc header needs regs= and entry=bN"),
    }
}

enum Line {
    Instr(Instr),
    Term(Terminator),
}

fn parse_reg(ln: usize, tok: &str) -> Result<Reg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|x| x.parse().ok())
        .map(Reg::new)
        .ok_or(ParseError { line: ln, message: format!("bad register `{tok}`") })
}

fn parse_operand(ln: usize, tok: &str) -> Result<Operand, ParseError> {
    if let Some(v) = tok.strip_prefix('#') {
        v.parse()
            .map(Operand::Imm)
            .map_err(|_| ParseError { line: ln, message: format!("bad immediate `{tok}`") })
    } else {
        parse_reg(ln, tok).map(Operand::Reg)
    }
}

fn parse_block_ref(ln: usize, tok: &str) -> Result<u32, ParseError> {
    tok.strip_prefix('b')
        .and_then(|x| x.parse().ok())
        .ok_or(ParseError { line: ln, message: format!("bad block `{tok}`") })
}

fn parse_mem_ref(ln: usize, tok: &str) -> Result<(Reg, i64), ParseError> {
    // `[rN+off]` where off may be negative.
    let inner = tok
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or(ParseError { line: ln, message: format!("bad address `{tok}`") })?;
    let plus = inner
        .find(['+', '-'])
        .ok_or(ParseError { line: ln, message: format!("bad address `{tok}`") })?;
    let base = parse_reg(ln, &inner[..plus])?;
    // Display emits `+<off>` even for negative offsets (`+-1`).
    let off_str = inner[plus..].strip_prefix('+').unwrap_or(&inner[plus..]);
    let off: i64 = off_str
        .parse()
        .map_err(|_| ParseError { line: ln, message: format!("bad offset in `{tok}`") })?;
    Ok((base, off))
}

fn alu_from_name(name: &str) -> Option<AluOp> {
    AluOp::ALL.into_iter().find(|op| op.to_string() == name)
}

fn parse_line(
    ln: usize,
    l: &str,
    procs: &HashMap<String, ProcId>,
) -> Result<Line, ParseError> {
    // Terminators first.
    if let Some(rest) = l.strip_prefix("jump ") {
        return Ok(Line::Term(Terminator::Jump { target: BlockId::new(parse_block_ref(ln, rest.trim())?) }));
    }
    if let Some(rest) = l.strip_prefix("br ") {
        // `br rC ? bT : bF`
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() != 5 || parts[1] != "?" || parts[3] != ":" {
            return err(ln, format!("bad branch `{l}`"));
        }
        return Ok(Line::Term(Terminator::Branch {
            cond: parse_reg(ln, parts[0])?,
            taken: BlockId::new(parse_block_ref(ln, parts[2])?),
            not_taken: BlockId::new(parse_block_ref(ln, parts[4])?),
        }));
    }
    if let Some(rest) = l.strip_prefix("switch ") {
        // `switch rS [b1, b2] default b3`
        let Some(lb) = rest.find('[') else { return err(ln, "switch missing `[`") };
        let Some(rb) = rest.find(']') else { return err(ln, "switch missing `]`") };
        let sel = parse_reg(ln, rest[..lb].trim())?;
        let mut targets = Vec::new();
        for tok in rest[lb + 1..rb].split(',') {
            let tok = tok.trim();
            if !tok.is_empty() {
                targets.push(BlockId::new(parse_block_ref(ln, tok)?));
            }
        }
        let Some(dflt) = rest[rb + 1..].trim().strip_prefix("default ") else {
            return err(ln, "switch missing `default`");
        };
        return Ok(Line::Term(Terminator::Switch {
            sel,
            targets,
            default: BlockId::new(parse_block_ref(ln, dflt.trim())?),
        }));
    }
    if l == "ret" {
        return Ok(Line::Term(Terminator::Return { value: None }));
    }
    if let Some(rest) = l.strip_prefix("ret ") {
        return Ok(Line::Term(Terminator::Return { value: Some(parse_operand(ln, rest.trim())?) }));
    }

    // Instructions.
    if l == "nop" {
        return Ok(Line::Instr(Instr::Nop));
    }
    if let Some(rest) = l.strip_prefix("out ") {
        return Ok(Line::Instr(Instr::Out { src: parse_operand(ln, rest.trim())? }));
    }
    if let Some(rest) = l.strip_prefix("store ") {
        // `store <src>, [rB+off]`
        let Some((src, addr)) = rest.split_once(',') else {
            return err(ln, format!("bad store `{l}`"));
        };
        let (base, offset) = parse_mem_ref(ln, addr.trim())?;
        return Ok(Line::Instr(Instr::Store { src: parse_operand(ln, src.trim())?, base, offset }));
    }
    if let Some(rest) = l.strip_prefix("call ") {
        return parse_call(ln, rest, None, procs);
    }
    // `rD = ...`
    let Some((dst_tok, rhs)) = l.split_once('=') else {
        return err(ln, format!("unrecognized line `{l}`"));
    };
    let dst = parse_reg(ln, dst_tok.trim())?;
    let rhs = rhs.trim();
    if let Some(rest) = rhs.strip_prefix("mov ") {
        return Ok(Line::Instr(Instr::Mov { dst, src: parse_operand(ln, rest.trim())? }));
    }
    if let Some(rest) = rhs.strip_prefix("load.s ") {
        let (base, offset) = parse_mem_ref(ln, rest.trim())?;
        return Ok(Line::Instr(Instr::Load { dst, base, offset, speculative: true }));
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (base, offset) = parse_mem_ref(ln, rest.trim())?;
        return Ok(Line::Instr(Instr::Load { dst, base, offset, speculative: false }));
    }
    if let Some(rest) = rhs.strip_prefix("call ") {
        return parse_call(ln, rest, Some(dst), procs);
    }
    // ALU: `<op> <lhs>, <rhs>`
    let Some((op_tok, operands)) = rhs.split_once(' ') else {
        return err(ln, format!("unrecognized instruction `{l}`"));
    };
    let Some(op) = alu_from_name(op_tok) else {
        return err(ln, format!("unknown operation `{op_tok}`"));
    };
    let Some((a, b)) = operands.split_once(',') else {
        return err(ln, format!("ALU needs two operands: `{l}`"));
    };
    Ok(Line::Instr(Instr::Alu {
        op,
        dst,
        lhs: parse_operand(ln, a.trim())?,
        rhs: parse_operand(ln, b.trim())?,
    }))
}

fn parse_call(
    ln: usize,
    rest: &str,
    dst: Option<Reg>,
    procs: &HashMap<String, ProcId>,
) -> Result<Line, ParseError> {
    let Some(open) = rest.find('(') else { return err(ln, "call missing `(`") };
    let Some(close) = rest.rfind(')') else { return err(ln, "call missing `)`") };
    let name = rest[..open].trim();
    let Some(&callee) = procs.get(name) else {
        return err(ln, format!("unknown procedure `{name}`"));
    };
    let mut args = Vec::new();
    for tok in rest[open + 1..close].split(',') {
        let tok = tok.trim();
        if !tok.is_empty() {
            args.push(parse_operand(ln, tok)?);
        }
    }
    Ok(Line::Instr(Instr::Call { callee, args, dst }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::{ExecConfig, Interp};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.set_memory(64, vec![5, -3, 7]);
        let helper = pb.declare_proc("helper", 1);
        let mut h = pb.begin_declared(helper);
        let x = Reg::new(0);
        let y = h.reg();
        h.alu(AluOp::Mul, y, x, 3i64);
        h.ret(Some(Operand::Reg(y)));
        h.finish();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let a = f.reg();
        let b = f.reg();
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        f.alu(AluOp::Add, a, n, -1i64);
        f.load(b, a, 2);
        f.load_spec(b, a, -1);
        f.store(b, a, 0);
        f.call(helper, vec![Operand::Reg(b)], Some(a));
        f.call(helper, vec![Operand::Imm(2)], None);
        f.out(a);
        f.branch(a, t, e);
        f.switch_to(t);
        f.nop();
        f.jump(j);
        f.switch_to(e);
        let s = f.reg();
        f.mov(s, 1i64);
        f.switch(s, vec![t, j], j);
        f.switch_to(j);
        f.ret(Some(Operand::Reg(a)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn print_parse_round_trip() {
        let p = sample();
        let text = print_program(&p);
        let q = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p, q, "{text}");
        // And printing again is a fixpoint.
        assert_eq!(print_program(&q), text);
    }

    #[test]
    fn parsed_program_executes_identically() {
        let p = sample();
        let q = parse_program(&print_program(&p)).unwrap();
        let a = Interp::new(&p, ExecConfig::default()).run(&[1]).unwrap();
        let b = Interp::new(&q, ExecConfig::default()).run(&[1]).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.return_value, b.return_value);
    }

    #[test]
    fn hand_written_program_parses() {
        let text = "\
program entry=main mem=32
data 10 20

proc main(0) regs=3 entry=b0 {
b0:
  r0 = mov #1
  r1 = load [r0+0]
  r2 = add r1, #2
  out r2
  ret r2
}
";
        let p = parse_program(text).unwrap();
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(r.output, vec![22]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\
; a comment
program entry=main mem=8

; another
proc main(0) regs=1 entry=b0 {
b0:
  nop
  ret
}
";
        assert!(parse_program(text).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "\
program entry=main mem=8
proc main(0) regs=1 entry=b0 {
b0:
  r0 = frobnicate r0, r0
  ret
}
";
        let e = parse_program(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_callee_rejected() {
        let bad = "\
program entry=main mem=8
proc main(0) regs=1 entry=b0 {
b0:
  r0 = call nothere()
  ret
}
";
        let e = parse_program(bad).unwrap_err();
        assert!(e.message.contains("nothere"));
    }

    #[test]
    fn missing_terminator_rejected() {
        let bad = "\
program entry=main mem=8
proc main(0) regs=1 entry=b0 {
b0:
  nop
b1:
  ret
}
";
        let e = parse_program(bad).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn all_alu_ops_round_trip() {
        for op in AluOp::ALL {
            let line = format!("r1 = {op} r0, #7");
            let parsed = parse_line(1, &line, &HashMap::new()).unwrap();
            match parsed {
                Line::Instr(Instr::Alu { op: got, .. }) => assert_eq!(got, op),
                _ => panic!("not an ALU instr"),
            }
        }
    }
}
