//! Whole programs: a set of procedures, an entry point, and a data memory.

use crate::proc::Proc;
use std::fmt;

/// Identifier of a procedure within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(u32);

impl ProcId {
    /// Creates a procedure id.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcId(index)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A complete program.
///
/// Memory is word-addressed: address `a` names the `a`-th 64-bit word. The
/// initial image is `data` followed by zeroes up to `mem_size` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Procedures, indexed by [`ProcId`].
    pub procs: Vec<Proc>,
    /// Entry procedure; receives the interpreter's argument vector.
    pub entry: ProcId,
    /// Total memory size in 64-bit words.
    pub mem_size: usize,
    /// Initial contents of the low words of memory (the data section).
    pub data: Vec<i64>,
}

impl Program {
    /// Creates a program over the given procedures.
    ///
    /// # Panics
    /// Panics if `data.len() > mem_size`.
    pub fn new(procs: Vec<Proc>, entry: ProcId, mem_size: usize, data: Vec<i64>) -> Self {
        assert!(
            data.len() <= mem_size,
            "data section ({} words) exceeds memory size ({} words)",
            data.len(),
            mem_size
        );
        Program { procs, entry, mem_size, data }
    }

    /// Shared access to a procedure.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn proc(&self, id: ProcId) -> &Proc {
        &self.procs[id.index()]
    }

    /// Mutable access to a procedure.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn proc_mut(&mut self, id: ProcId) -> &mut Proc {
        &mut self.procs[id.index()]
    }

    /// Iterates over `(ProcId, &Proc)` pairs.
    pub fn iter_procs(&self) -> impl Iterator<Item = (ProcId, &Proc)> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId::new(i as u32), p))
    }

    /// All procedure ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.procs.len() as u32).map(ProcId::new)
    }

    /// Builds the initial memory image.
    pub fn initial_memory(&self) -> Vec<i64> {
        let mut mem = vec![0i64; self.mem_size];
        mem[..self.data.len()].copy_from_slice(&self.data);
        mem
    }

    /// Static instruction count over all procedures — the analog of the
    /// paper's "Size (KB)" column (ours in instructions, 4 bytes each).
    pub fn static_size(&self) -> usize {
        self.procs.iter().map(Proc::static_size).sum()
    }

    /// Finds a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.iter_procs()
            .find(|(_, p)| p.name == name)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Terminator;
    use crate::proc::Block;

    fn tiny() -> Program {
        let mut p = Proc::new("main", 0);
        p.push_block(Block::new(vec![], Terminator::Return { value: None }));
        Program::new(vec![p], ProcId::new(0), 8, vec![1, 2, 3])
    }

    #[test]
    fn initial_memory_pads_with_zeroes() {
        let prog = tiny();
        assert_eq!(prog.initial_memory(), vec![1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds memory size")]
    fn oversized_data_panics() {
        let mut p = Proc::new("main", 0);
        p.push_block(Block::new(vec![], Terminator::Return { value: None }));
        let _ = Program::new(vec![p], ProcId::new(0), 2, vec![1, 2, 3]);
    }

    #[test]
    fn proc_lookup_by_name() {
        let prog = tiny();
        assert_eq!(prog.proc_by_name("main"), Some(ProcId::new(0)));
        assert_eq!(prog.proc_by_name("nope"), None);
    }

    #[test]
    fn static_size_sums_procs() {
        let prog = tiny();
        assert_eq!(prog.static_size(), 1);
    }
}
