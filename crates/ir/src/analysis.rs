//! Control-flow analyses: predecessors, orderings, dominators, back edges,
//! and natural loops.
//!
//! Trace formation (both edge- and path-based) needs back-edge detection —
//! "no trace can contain a back edge" — and loop membership for the
//! superblock-loop enlargement heuristics. We use the standard dominator-
//! based definition: an edge `u → v` is a back edge when `v` dominates `u`.
//! Benchmark and randomly generated CFGs in this repository are reducible, so
//! this coincides with the DFS retreating-edge definition.

use crate::proc::{BlockId, Proc};
use std::collections::HashMap;

/// Predecessor lists and related CFG structure for one procedure.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists per block (deduplicated, deterministic order).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry; unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] == Some(i)` iff `rpo[i] == b`; `None` for unreachable
    /// blocks.
    pub rpo_index: Vec<Option<usize>>,
}

impl Cfg {
    /// Computes CFG structure for `proc`.
    pub fn compute(proc: &Proc) -> Self {
        let n = proc.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in proc.iter_blocks() {
            let ss = block.term.successors();
            for s in &ss {
                if !preds[s.index()].contains(&id) {
                    preds[s.index()].push(id);
                }
            }
            succs[id.index()] = ss;
        }

        // Iterative DFS postorder.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack: Vec<(BlockId, usize)> = vec![(proc.entry, 0)];
        state[proc.entry.index()] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if state[next.index()] == 0 {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }
        Cfg { succs, preds, rpo, rpo_index }
    }

    /// True when `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the procedure has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Immediate-dominator tree, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over reverse postorder.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry block is its
    /// own idom; unreachable blocks map to `None`.
    pub idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for a procedure given its CFG.
    pub fn compute(proc: &Proc, cfg: &Cfg) -> Self {
        let n = proc.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = proc.entry;
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                if b == entry {
                    continue;
                }
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, entry }
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return cur == a,
            }
        }
    }

    /// Entry block used for the computation.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[Option<usize>],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    let idx = |x: BlockId| rpo_index[x.index()].expect("reachable");
    while a != b {
        while idx(a) > idx(b) {
            a = idom[a.index()].expect("processed");
        }
        while idx(b) > idx(a) {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

/// Back edges and natural-loop structure.
#[derive(Debug, Clone)]
pub struct Loops {
    /// Back edges `(tail, head)`: `head` dominates `tail`.
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// Loop headers (targets of back edges), deduplicated.
    pub headers: Vec<BlockId>,
    /// `loop_depth[b]` = number of natural loops containing `b`.
    pub loop_depth: Vec<u32>,
    /// Blocks of the natural loop for each header (header first).
    pub members: HashMap<BlockId, Vec<BlockId>>,
}

impl Loops {
    /// Computes back edges and natural loops.
    pub fn compute(proc: &Proc, cfg: &Cfg, dom: &Dominators) -> Self {
        let n = proc.blocks.len();
        let mut back_edges = Vec::new();
        for (id, _) in proc.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            for &s in &cfg.succs[id.index()] {
                if dom.dominates(s, id) {
                    back_edges.push((id, s));
                }
            }
        }
        let mut headers: Vec<BlockId> = Vec::new();
        for &(_, h) in &back_edges {
            if !headers.contains(&h) {
                headers.push(h);
            }
        }

        let mut loop_depth = vec![0u32; n];
        let mut members: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &h in &headers {
            // Natural loop of header h: union over back edges (t, h).
            let mut in_loop = vec![false; n];
            in_loop[h.index()] = true;
            let mut work: Vec<BlockId> = back_edges
                .iter()
                .filter(|&&(_, hh)| hh == h)
                .map(|&(t, _)| t)
                .collect();
            while let Some(b) = work.pop() {
                if in_loop[b.index()] {
                    continue;
                }
                in_loop[b.index()] = true;
                for &p in &cfg.preds[b.index()] {
                    if !in_loop[p.index()] && cfg.is_reachable(p) {
                        work.push(p);
                    }
                }
            }
            let mut blocks = vec![h];
            for i in 0..n {
                let b = BlockId::new(i as u32);
                if in_loop[i] {
                    loop_depth[i] += 1;
                    if b != h {
                        blocks.push(b);
                    }
                }
            }
            members.insert(h, blocks);
        }
        Loops { back_edges, headers, loop_depth, members }
    }

    /// True when edge `(tail, head)` is a back edge.
    pub fn is_back_edge(&self, tail: BlockId, head: BlockId) -> bool {
        self.back_edges.contains(&(tail, head))
    }
}

/// Bundle of all analyses for one procedure.
#[derive(Debug, Clone)]
pub struct ProcAnalysis {
    /// CFG structure.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: Dominators,
    /// Loop structure.
    pub loops: Loops,
}

impl ProcAnalysis {
    /// Computes all analyses for `proc`.
    pub fn compute(proc: &Proc) -> Self {
        let cfg = Cfg::compute(proc);
        let dom = Dominators::compute(proc, &cfg);
        let loops = Loops::compute(proc, &cfg, &dom);
        ProcAnalysis { cfg, dom, loops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{AluOp, Operand};
    use crate::proc::Reg;
    use crate::program::Program;

    /// Diamond: entry -> (a | b) -> exit.
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        let exit = f.new_block();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.jump(exit);
        f.switch_to(b);
        f.jump(exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    /// entry -> head; head -> body | exit; body -> head (back edge).
    fn simple_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn diamond_dominators() {
        let p = diamond();
        let proc = p.proc(p.entry);
        let a = ProcAnalysis::compute(proc);
        let e = BlockId::new(0);
        let ba = BlockId::new(1);
        let bb = BlockId::new(2);
        let ex = BlockId::new(3);
        assert!(a.dom.dominates(e, ex));
        assert!(a.dom.dominates(e, ba));
        assert!(!a.dom.dominates(ba, ex));
        assert!(!a.dom.dominates(bb, ex));
        assert_eq!(a.dom.idom[ex.index()], Some(e));
        assert!(a.loops.back_edges.is_empty());
        assert_eq!(a.cfg.rpo.len(), 4);
        assert_eq!(a.cfg.rpo[0], e);
    }

    #[test]
    fn loop_back_edge_and_members() {
        let p = simple_loop();
        let proc = p.proc(p.entry);
        let a = ProcAnalysis::compute(proc);
        let head = BlockId::new(1);
        let body = BlockId::new(2);
        assert_eq!(a.loops.back_edges, vec![(body, head)]);
        assert_eq!(a.loops.headers, vec![head]);
        assert!(a.loops.is_back_edge(body, head));
        assert!(!a.loops.is_back_edge(head, body));
        let members = &a.loops.members[&head];
        assert!(members.contains(&head) && members.contains(&body));
        assert_eq!(members.len(), 2);
        assert_eq!(a.loops.loop_depth[head.index()], 1);
        assert_eq!(a.loops.loop_depth[BlockId::new(0).index()], 0);
    }

    #[test]
    fn preds_match_succs() {
        let p = simple_loop();
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        for (b, _) in proc.iter_blocks() {
            for &s in &cfg.succs[b.index()] {
                assert!(cfg.preds[s.index()].contains(&b));
            }
            for &pr in &cfg.preds[b.index()] {
                assert!(cfg.succs[pr.index()].contains(&b));
            }
        }
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let dead = f.new_block();
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        assert_eq!(cfg.rpo.len(), 1);
        assert!(!cfg.is_reachable(BlockId::new(1)));
    }

    #[test]
    fn nested_loop_depth() {
        // outer: i loop containing j loop.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let j = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let oh = f.new_block();
        let ob = f.new_block();
        let ih = f.new_block();
        let ib = f.new_block();
        let olatch = f.new_block();
        let exit = f.new_block();
        f.jump(oh);
        f.switch_to(oh);
        f.alu(AluOp::CmpLt, c, i, n);
        f.branch(c, ob, exit);
        f.switch_to(ob);
        f.mov(j, 0i64);
        f.jump(ih);
        f.switch_to(ih);
        f.alu(AluOp::CmpLt, c, j, n);
        f.branch(c, ib, olatch);
        f.switch_to(ib);
        f.alu(AluOp::Add, j, j, 1i64);
        f.jump(ih);
        f.switch_to(olatch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(oh);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let a = ProcAnalysis::compute(proc);
        let ih_id = BlockId::new(3);
        let ib_id = BlockId::new(4);
        assert_eq!(a.loops.loop_depth[ib_id.index()], 2);
        assert_eq!(a.loops.loop_depth[ih_id.index()], 2);
        assert_eq!(a.loops.loop_depth[BlockId::new(1).index()], 1); // outer head
        assert_eq!(a.loops.headers.len(), 2);
    }
}
