#![warn(missing_docs)]

//! Executable compiler IR for the path-profile scheduling reproduction.
//!
//! This crate defines an Alpha-flavoured, executable intermediate
//! representation: programs made of procedures, procedures made of basic
//! blocks over a control-flow graph, and blocks made of straight-line
//! [`Instr`]s closed by a [`Terminator`]. A reference [`interp`]reter defines
//! the observable semantics of the IR; every transformation performed by the
//! scheduling pipeline must preserve them.
//!
//! The IR plays the role that compiled Digital Alpha binaries play in the
//! paper (Young & Smith, MICRO-31 1998): it is the thing that gets profiled,
//! restructured into superblocks, compacted, and finally timed by the
//! compiled-simulation analog in `pps-sim`.
//!
//! # Example
//!
//! ```
//! use pps_ir::builder::ProgramBuilder;
//! use pps_ir::{interp::{Interp, ExecConfig}, AluOp, Operand};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.begin_proc("main", 0);
//! let r = f.reg();
//! f.mov(r, Operand::Imm(21));
//! let r2 = f.reg();
//! f.alu(AluOp::Add, r2, Operand::Reg(r), Operand::Reg(r));
//! f.out(Operand::Reg(r2));
//! f.ret(None);
//! let main = f.finish();
//! let program = pb.finish(main);
//!
//! let result = Interp::new(&program, ExecConfig::default()).run(&[])?;
//! assert_eq!(result.output, vec![42]);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod builder;
pub mod cache;
pub mod decode;
pub mod dot;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod inline;
pub mod instr;
pub mod interp;
pub mod proc;
pub mod program;
pub mod text;
pub mod trace;
pub mod verify;

pub use cache::{AnalysisCache, UnitCache};
pub use decode::{DecodedProc, DecodedProgram};
pub use exec::{current_engine, with_engine, Engine, Exec};
pub use fault::{FaultInjector, FaultKind, FaultRecord};
pub use instr::{AluOp, Instr, Operand, Terminator};
pub use proc::{Block, BlockId, Proc, Reg};
pub use program::{ProcId, Program};
pub use trace::{BlockEvent, CountSink, NullSink, TraceSink, VecSink};
