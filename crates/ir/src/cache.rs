//! Generation-keyed memoization of CFG analyses.
//!
//! [`Proc::generation`] stamps every mutation with a process-unique nonce,
//! so an analysis computed at generation `g` stays valid exactly as long as
//! the procedure still reports `g`. [`UnitCache`] exploits that: it keeps
//! the latest [`Cfg`] and [`ProcAnalysis`] behind `Arc`s keyed by the
//! generation they were computed at, and recomputes only when the
//! procedure has actually changed. [`AnalysisCache`] is the per-program
//! collection of unit caches, indexed by [`ProcId`].
//!
//! Results are handed out as `Arc`s so a caller can hold an analysis across
//! a mutation of the procedure (the `Arc` keeps the stale-but-consistent
//! snapshot alive while the cache moves on).

use crate::analysis::{Cfg, ProcAnalysis};
use crate::decode::DecodedProc;
use crate::proc::Proc;
use crate::program::{ProcId, Program};
use std::sync::Arc;

/// Memoized analyses for one procedure. `Send`, so a compilation unit
/// carrying its cache can move across worker threads.
#[derive(Debug, Clone, Default)]
pub struct UnitCache {
    cfg: Option<(u64, Arc<Cfg>)>,
    analysis: Option<(u64, Arc<ProcAnalysis>)>,
    decoded: Option<(u64, Arc<DecodedProc>)>,
    hash: Option<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl UnitCache {
    /// An empty cache.
    pub fn new() -> Self {
        UnitCache::default()
    }

    /// The CFG of `proc`, memoized by generation. Falls back to the full
    /// analysis slot when that is current (the bundle embeds a CFG), so a
    /// `analysis()`-then-`cfg()` sequence costs one clone, not a recompute.
    pub fn cfg(&mut self, proc: &Proc) -> Arc<Cfg> {
        let gen = proc.generation();
        if let Some((g, cfg)) = &self.cfg {
            if *g == gen {
                self.hits += 1;
                return cfg.clone();
            }
        }
        let cfg = match &self.analysis {
            Some((g, a)) if *g == gen => {
                self.hits += 1;
                Arc::new(a.cfg.clone())
            }
            _ => {
                self.misses += 1;
                Arc::new(Cfg::compute(proc))
            }
        };
        self.cfg = Some((gen, cfg.clone()));
        cfg
    }

    /// The full analysis bundle of `proc`, memoized by generation.
    pub fn analysis(&mut self, proc: &Proc) -> Arc<ProcAnalysis> {
        let gen = proc.generation();
        if let Some((g, a)) = &self.analysis {
            if *g == gen {
                self.hits += 1;
                return a.clone();
            }
        }
        self.misses += 1;
        let a = Arc::new(ProcAnalysis::compute(proc));
        self.analysis = Some((gen, a.clone()));
        a
    }

    /// The flat decoded instruction stream of `proc`, memoized by
    /// generation. The fast execution engine's per-program decode goes
    /// through here so repeated runs over an unchanged procedure (the
    /// guard oracle, profiling sweeps) pay the decode once.
    pub fn decoded(&mut self, proc: &Proc) -> Arc<DecodedProc> {
        let gen = proc.generation();
        if let Some((g, d)) = &self.decoded {
            if *g == gen {
                self.hits += 1;
                return d.clone();
            }
        }
        self.misses += 1;
        let d = Arc::new(DecodedProc::decode(proc));
        self.decoded = Some((gen, d.clone()));
        d
    }

    /// The canonical structural hash of `proc` (see
    /// [`crate::hash::proc_hash`]), memoized by generation. The hash
    /// ignores the generation itself — within one generation the body is
    /// fixed, so the memo is exact, and across generations equal bodies
    /// recompute to equal hashes.
    pub fn structural_hash(&mut self, proc: &Proc) -> u64 {
        let gen = proc.generation();
        if let Some((g, h)) = self.hash {
            if g == gen {
                self.hits += 1;
                return h;
            }
        }
        self.misses += 1;
        let h = crate::hash::proc_hash(proc);
        self.hash = Some((gen, h));
        h
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Per-program analysis cache: one [`UnitCache`] per procedure, grown on
/// demand.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    units: Vec<UnitCache>,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// The unit cache for `pid`.
    pub fn unit_mut(&mut self, pid: ProcId) -> &mut UnitCache {
        let i = pid.index();
        if i >= self.units.len() {
            self.units.resize_with(i + 1, UnitCache::new);
        }
        &mut self.units[i]
    }

    /// Memoized CFG of procedure `pid`.
    pub fn cfg(&mut self, program: &Program, pid: ProcId) -> Arc<Cfg> {
        let proc = program.proc(pid);
        self.unit_mut(pid).cfg(proc)
    }

    /// Memoized analysis bundle of procedure `pid`.
    pub fn analysis(&mut self, program: &Program, pid: ProcId) -> Arc<ProcAnalysis> {
        let proc = program.proc(pid);
        self.unit_mut(pid).analysis(proc)
    }

    /// Memoized structural hash of procedure `pid`.
    pub fn structural_hash(&mut self, program: &Program, pid: ProcId) -> u64 {
        let proc = program.proc(pid);
        self.unit_mut(pid).structural_hash(proc)
    }

    /// Canonical hash of the whole program, built from the memoized
    /// per-procedure hashes. Identical to [`crate::hash::program_hash`]
    /// over the same program, but procedures whose generation has not
    /// changed since the last query are not re-walked.
    pub fn program_hash(&mut self, program: &Program) -> u64 {
        let hashes: Vec<u64> = program
            .proc_ids()
            .map(|pid| self.structural_hash(program, pid))
            .collect();
        crate::hash::combine_program_hash(
            hashes.into_iter(),
            program.entry.index() as u32,
            program.mem_size,
            &program.data,
        )
    }

    /// `(hits, misses)` summed over every unit.
    pub fn stats(&self) -> (u64, u64) {
        self.units
            .iter()
            .fold((0, 0), |(h, m), u| (h + u.hits, m + u.misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Terminator;
    use crate::proc::{Block, BlockId};

    fn two_block_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let next = f.new_block();
        f.jump(next);
        f.switch_to(next);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn analysis_hits_until_mutation() {
        let mut p = two_block_program();
        let mut cache = AnalysisCache::new();
        let a1 = cache.analysis(&p, p.entry);
        let a2 = cache.analysis(&p, p.entry);
        assert!(Arc::ptr_eq(&a1, &a2), "repeated query returns the memo");
        assert_eq!(cache.stats(), (1, 1));

        // Mutation invalidates: the next query recomputes.
        p.proc_mut(p.entry)
            .push_block(Block::new(vec![], Terminator::Return { value: None }));
        let a3 = cache.analysis(&p, p.entry);
        assert!(!Arc::ptr_eq(&a1, &a3));
        assert_eq!(a3.cfg.len(), 3);
        // The Arc handed out earlier still describes the old body.
        assert_eq!(a1.cfg.len(), 2);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn cfg_reuses_current_analysis_bundle() {
        let p = two_block_program();
        let mut cache = AnalysisCache::new();
        let _a = cache.analysis(&p, p.entry);
        let cfg = cache.cfg(&p, p.entry);
        assert_eq!(cfg.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1), "cfg came from the analysis slot");
        // And the dedicated cfg slot now serves hits on its own.
        let cfg2 = cache.cfg(&p, p.entry);
        assert!(Arc::ptr_eq(&cfg, &cfg2));
    }

    #[test]
    fn rollback_to_snapshot_does_not_alias_cache_entries() {
        let mut p = two_block_program();
        let mut cache = AnalysisCache::new();
        let snapshot = p.proc(p.entry).clone();
        let a_before = cache.analysis(&p, p.entry);

        // Mutate, query (cache now keyed at the new generation), roll back.
        p.proc_mut(p.entry)
            .push_block(Block::new(vec![], Terminator::Return { value: None }));
        let a_mut = cache.analysis(&p, p.entry);
        assert_eq!(a_mut.cfg.len(), 3);
        *p.proc_mut(p.entry) = snapshot;

        // The restored body answers with the snapshot's generation, which
        // the cache no longer holds — a recompute, never a stale bundle.
        let a_after = cache.analysis(&p, p.entry);
        assert_eq!(a_after.cfg.len(), 2);
        assert_eq!(a_after.cfg.len(), a_before.cfg.len());
    }

    #[test]
    fn structural_hash_memoizes_by_generation_but_hashes_content() {
        let mut p = two_block_program();
        let mut cache = AnalysisCache::new();
        let h1 = cache.program_hash(&p);
        let h2 = cache.program_hash(&p);
        assert_eq!(h1, h2);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1), "second query was a memo hit");

        // Generation churn without a content change: recompute, same hash.
        p.proc_mut(p.entry).touch();
        assert_eq!(cache.program_hash(&p), h1);

        // A real mutation changes the hash.
        p.proc_mut(p.entry)
            .push_block(Block::new(vec![], Terminator::Return { value: None }));
        assert_ne!(cache.program_hash(&p), h1);
    }

    #[test]
    fn unit_cache_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<UnitCache>();
        assert_send::<AnalysisCache>();
    }

    #[test]
    fn cache_grows_to_any_proc_id() {
        let p = two_block_program();
        let mut cache = AnalysisCache::new();
        let _ = cache.analysis(&p, ProcId::new(0));
        assert_eq!(cache.unit_mut(ProcId::new(0)).stats().1, 1);
        let _ = BlockId::new(0);
    }
}
