//! Execution-engine selection and the fast direct-threaded engine.
//!
//! Two engines define (and cross-check) the IR's observable semantics:
//!
//! - the **reference** engine, [`crate::interp::Interp`] — the tree-walking
//!   interpreter that *is* the semantic ground truth;
//! - the **fast** engine — a direct-threaded loop over the flat
//!   [`DecodedProgram`] stream ([`crate::decode`]), with all activation
//!   registers in one arena (a register *window* per frame, no per-call
//!   allocation) and control transfers resolved to program counters.
//!
//! The contract between them is exact equality of everything observable:
//! [`ExecResult`] including [`DynCounts`], the full [`TraceSink`] event
//! stream, every [`ExecError`], and the truncation point of bounded runs
//! (the budget is checked before *every* dynamic instruction, terminators
//! included, in both engines). `tests/interp_diff.rs` enforces the
//! contract over randomized programs and fault-injected variants.
//!
//! [`Exec`] is the engine-dispatching front door the pipeline uses
//! everywhere the reference engine used to be constructed directly. The
//! engine defaults to [`Engine::Fast`]; set `PPS_ENGINE=reference` to run a
//! whole process on the reference engine (A/B benchmarking, bug triage),
//! or use [`with_engine`] to pin an engine for a scope (differential
//! tests). The thread-local override takes precedence over the
//! environment.

use crate::cache::AnalysisCache;
use crate::decode::{DecodedProgram, Op, Src, NONE};
use crate::interp::{BoundedRun, DynCounts, ExecConfig, ExecError, ExecResult, Interp};
use crate::proc::BlockId;
use crate::program::{ProcId, Program};
use crate::trace::{NullSink, TraceSink};
use std::cell::Cell;
use std::sync::OnceLock;

/// Which execution engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Direct-threaded dispatch over the flat decoded stream (default).
    Fast,
    /// The tree-walking reference interpreter.
    Reference,
}

thread_local! {
    static ENGINE_OVERRIDE: Cell<Option<Engine>> = const { Cell::new(None) };
}

static ENV_ENGINE: OnceLock<Engine> = OnceLock::new();

/// The engine [`Exec::new`] selects: a [`with_engine`] override if one is
/// active on this thread, else `PPS_ENGINE` (`reference`/`ref` → reference,
/// anything else → fast; read once per process), else [`Engine::Fast`].
pub fn current_engine() -> Engine {
    if let Some(e) = ENGINE_OVERRIDE.with(Cell::get) {
        return e;
    }
    *ENV_ENGINE.get_or_init(|| match std::env::var("PPS_ENGINE").as_deref() {
        Ok("reference") | Ok("ref") => Engine::Reference,
        _ => Engine::Fast,
    })
}

/// Runs `f` with `engine` as this thread's engine, restoring the previous
/// selection afterwards (panic-safe). Differential tests use this to pin
/// each side of a comparison.
pub fn with_engine<R>(engine: Engine, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Engine>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ENGINE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(ENGINE_OVERRIDE.with(|c| c.replace(Some(engine))));
    f()
}

/// Engine-dispatching executor with the same API surface as
/// [`Interp`]: `run`, `run_traced`, `run_bounded`. Construct once per
/// program (decoding happens here) and run any number of inputs.
#[derive(Debug)]
pub struct Exec<'p> {
    program: &'p Program,
    config: ExecConfig,
    /// Present iff the engine is fast.
    decoded: Option<DecodedProgram>,
}

impl<'p> Exec<'p> {
    /// Creates an executor using [`current_engine`].
    pub fn new(program: &'p Program, config: ExecConfig) -> Self {
        Self::with_engine(program, config, current_engine())
    }

    /// Creates an executor on an explicit engine.
    pub fn with_engine(program: &'p Program, config: ExecConfig, engine: Engine) -> Self {
        let decoded = match engine {
            Engine::Fast => Some(DecodedProgram::decode(program)),
            Engine::Reference => None,
        };
        Exec { program, config, decoded }
    }

    /// Creates an executor using [`current_engine`], decoding through
    /// `cache` so unchanged procedures reuse their memoized streams (the
    /// guard's oracle re-runs after every per-procedure transform; only the
    /// mutated procedure re-decodes).
    pub fn new_cached(program: &'p Program, config: ExecConfig, cache: &mut AnalysisCache) -> Self {
        let decoded = match current_engine() {
            Engine::Fast => Some(DecodedProgram::decode_cached(program, cache)),
            Engine::Reference => None,
        };
        Exec { program, config, decoded }
    }

    /// Creates a fast-engine executor over an already-decoded program.
    pub fn from_decoded(program: &'p Program, decoded: DecodedProgram, config: ExecConfig) -> Self {
        Exec { program, config, decoded: Some(decoded) }
    }

    /// The engine this executor dispatches to.
    pub fn engine(&self) -> Engine {
        if self.decoded.is_some() {
            Engine::Fast
        } else {
            Engine::Reference
        }
    }

    /// Runs the entry procedure with `args`, discarding the trace.
    ///
    /// # Errors
    /// As [`Interp::run`].
    pub fn run(&self, args: &[i64]) -> Result<ExecResult, ExecError> {
        self.run_traced(args, &mut NullSink)
    }

    /// Runs the program, reporting every block entry to `sink`.
    ///
    /// # Errors
    /// As [`Interp::run_traced`].
    pub fn run_traced<S: TraceSink>(
        &self,
        args: &[i64],
        sink: &mut S,
    ) -> Result<ExecResult, ExecError> {
        match &self.decoded {
            Some(dp) => match run_flat(self.program, dp, self.config, args, sink)? {
                BoundedRun { completed: true, result } => Ok(result),
                BoundedRun { completed: false, .. } => Err(ExecError::InstrLimit),
            },
            None => Interp::new(self.program, self.config).run_traced(args, sink),
        }
    }

    /// Runs with `max_instrs` exhaustion treated as truncated success.
    ///
    /// # Errors
    /// As [`Interp::run_bounded`].
    pub fn run_bounded(&self, args: &[i64]) -> Result<BoundedRun, ExecError> {
        match &self.decoded {
            Some(dp) => run_flat(self.program, dp, self.config, args, &mut NullSink),
            None => Interp::new(self.program, self.config).run_bounded(args),
        }
    }
}

/// Pops the innermost activation: emits the exit event, restores the
/// caller's window and pc, and writes the return destination (defined as 0
/// when the callee returned nothing — the reference engine's rule). The
/// `$top` block runs instead when this was the entry activation.
macro_rules! ret_transfer {
    ($frames:expr, $regs:expr, $base:expr, $cur:expr, $cur_proc:expr, $pc:expr, $dp:expr,
     $sink:expr, $ret:expr, $top:block) => {{
        $sink.exit_proc(ProcId::new($cur_proc));
        match $frames.pop() {
            Some(f) => {
                $regs.truncate($base);
                $base = f.base as usize;
                if f.ret_dst != NONE {
                    let v: Option<i64> = $ret;
                    $regs[$base + f.ret_dst as usize] = v.unwrap_or(0);
                }
                $cur_proc = f.proc;
                $cur = &*$dp.procs[f.proc as usize];
                $pc = f.pc;
            }
            None => $top,
        }
    }};
}

/// A suspended caller: where to resume when the callee returns.
struct SavedFrame {
    proc: u32,
    /// Register-window base in the shared arena.
    base: u32,
    /// Resume pc (the op after the call).
    pc: u32,
    /// Return-value destination (`NONE` = none).
    ret_dst: u32,
}

/// The fast engine's dispatch loop. Semantics mirror
/// [`Interp`]'s `exec` exactly — see the module docs for the contract.
fn run_flat<S: TraceSink>(
    program: &Program,
    dp: &DecodedProgram,
    config: ExecConfig,
    args: &[i64],
    sink: &mut S,
) -> Result<BoundedRun, ExecError> {
    let entry_id = dp.entry;
    let entry = &dp.procs[entry_id.index()];
    if entry.num_params as usize != args.len() {
        return Err(ExecError::ArityMismatch {
            expected: entry.num_params,
            got: args.len(),
        });
    }

    let mut memory = program.initial_memory();
    let mut output: Vec<i64> = Vec::new();
    let mut counts = DynCounts::default();
    let mut return_value: Option<i64> = None;

    // One register arena for the whole run: each activation owns the
    // window `[base, base + window)` at the arena's tail while it is the
    // innermost frame, so an in-window register index bounds-checks
    // against the arena length exactly like the reference engine's
    // per-frame vector.
    let mut regs: Vec<i64> = vec![0; entry.window as usize];
    regs[..args.len()].copy_from_slice(args);
    let mut frames: Vec<SavedFrame> = Vec::new();
    let mut arg_buf: Vec<i64> = Vec::new();

    let mut cur_proc: u32 = entry_id.index() as u32;
    let mut cur = &**entry;
    let mut base: usize = 0;
    let mut pc: u32 = cur.entry.pc;

    counts.calls += 1;
    sink.enter_proc(entry_id);
    sink.block(entry_id, BlockId::new(cur.entry.block));
    counts.blocks += 1;

    macro_rules! transfer {
        ($t:expr) => {{
            let t = $t;
            sink.block(ProcId::new(cur_proc), BlockId::new(t.block));
            counts.blocks += 1;
            pc = t.pc;
        }};
    }

    loop {
        if counts.instrs >= config.max_instrs {
            return Ok(BoundedRun {
                result: ExecResult { output, return_value: None, counts, memory },
                completed: false,
            });
        }
        counts.instrs += 1;
        match cur.code[pc as usize] {
            Op::AluRR { op, dst, a, b } => {
                let x = regs[base + a as usize];
                let y = regs[base + b as usize];
                regs[base + dst as usize] = op.eval(x, y);
                pc += 1;
            }
            Op::AluRI { op, dst, a, imm } => {
                let x = regs[base + a as usize];
                regs[base + dst as usize] = op.eval(x, imm);
                pc += 1;
            }
            Op::AluIR { op, dst, imm, b } => {
                let y = regs[base + b as usize];
                regs[base + dst as usize] = op.eval(imm, y);
                pc += 1;
            }
            Op::MovImm { dst, imm } => {
                regs[base + dst as usize] = imm;
                pc += 1;
            }
            Op::MovReg { dst, src } => {
                regs[base + dst as usize] = regs[base + src as usize];
                pc += 1;
            }
            Op::Load { dst, base: b, offset } => {
                counts.loads += 1;
                let addr = regs[base + b as usize].wrapping_add(offset);
                if addr >= 0 && (addr as usize) < memory.len() {
                    regs[base + dst as usize] = memory[addr as usize];
                } else {
                    return Err(ExecError::MemoryFault { addr, proc: ProcId::new(cur_proc) });
                }
                pc += 1;
            }
            Op::LoadSpec { dst, base: b, offset } => {
                counts.loads += 1;
                let addr = regs[base + b as usize].wrapping_add(offset);
                regs[base + dst as usize] = if addr >= 0 && (addr as usize) < memory.len() {
                    memory[addr as usize]
                } else {
                    0
                };
                pc += 1;
            }
            Op::StoreR { src, base: b, offset } => {
                counts.stores += 1;
                let addr = regs[base + b as usize].wrapping_add(offset);
                if addr >= 0 && (addr as usize) < memory.len() {
                    memory[addr as usize] = regs[base + src as usize];
                } else {
                    return Err(ExecError::MemoryFault { addr, proc: ProcId::new(cur_proc) });
                }
                pc += 1;
            }
            Op::StoreI { imm, base: b, offset } => {
                counts.stores += 1;
                let addr = regs[base + b as usize].wrapping_add(offset);
                if addr >= 0 && (addr as usize) < memory.len() {
                    memory[addr as usize] = imm;
                } else {
                    return Err(ExecError::MemoryFault { addr, proc: ProcId::new(cur_proc) });
                }
                pc += 1;
            }
            Op::Call { callee, args_start, args_len, dst } => {
                // `frames` holds suspended callers; the live frame makes
                // the depth `frames.len() + 1`, matching the reference
                // engine's stack length at its depth check.
                if frames.len() + 1 >= config.max_call_depth {
                    return Err(ExecError::CallDepth);
                }
                let cd = &dp.procs[callee as usize];
                debug_assert_eq!(
                    cd.num_params, args_len,
                    "call arity mismatch: callee expects {} args, got {}",
                    cd.num_params, args_len
                );
                // Evaluate arguments while the caller window is still the
                // arena tail (out-of-window reads must fault, not read the
                // callee's zeroed window).
                arg_buf.clear();
                for s in &cur.args[args_start as usize..(args_start + args_len) as usize] {
                    arg_buf.push(match *s {
                        Src::Reg(r) => regs[base + r as usize],
                        Src::Imm(v) => v,
                    });
                }
                frames.push(SavedFrame {
                    proc: cur_proc,
                    base: base as u32,
                    pc: pc + 1,
                    ret_dst: dst,
                });
                base = regs.len();
                regs.resize(base + cd.window as usize, 0);
                regs[base..base + arg_buf.len()].copy_from_slice(&arg_buf);
                cur_proc = callee;
                cur = &**cd;
                pc = cur.entry.pc;
                counts.calls += 1;
                let callee_id = ProcId::new(callee);
                sink.enter_proc(callee_id);
                sink.block(callee_id, BlockId::new(cur.entry.block));
                counts.blocks += 1;
            }
            Op::OutR { src } => {
                output.push(regs[base + src as usize]);
                pc += 1;
            }
            Op::OutI { imm } => {
                output.push(imm);
                pc += 1;
            }
            Op::Nop => {
                pc += 1;
            }
            Op::Jump { t } => transfer!(t),
            Op::Branch { cond, taken, not_taken } => {
                counts.branches += 1;
                let t = if regs[base + cond as usize] != 0 { taken } else { not_taken };
                transfer!(t);
            }
            Op::Switch { sel, tab_start, tab_len, default } => {
                counts.branches += 1;
                let v = regs[base + sel as usize];
                let t = if v >= 0 && (v as u64) < u64::from(tab_len) {
                    cur.switch_targets[tab_start as usize + v as usize]
                } else {
                    default
                };
                transfer!(t);
            }
            Op::RetR { src } => {
                let ret = regs[base + src as usize];
                ret_transfer!(frames, regs, base, cur, cur_proc, pc, dp, sink, Some(ret), {
                    return_value = Some(ret);
                    break;
                });
            }
            Op::RetI { imm } => {
                ret_transfer!(frames, regs, base, cur, cur_proc, pc, dp, sink, Some(imm), {
                    return_value = Some(imm);
                    break;
                });
            }
            Op::RetNone => {
                ret_transfer!(frames, regs, base, cur, cur_proc, pc, dp, sink, None, {
                    break;
                });
            }
        }
    }

    Ok(BoundedRun {
        result: ExecResult { output, return_value, counts, memory },
        completed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{AluOp, Operand};

    fn sum_to(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let s = f.reg();
        let i = f.reg();
        let c = f.reg();
        f.mov(s, 0i64);
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, s, Operand::Reg(s), Operand::Reg(i));
        f.alu(AluOp::Add, i, Operand::Reg(i), Operand::Imm(1));
        f.jump(head);
        f.switch_to(exit);
        f.out(Operand::Reg(s));
        f.ret(Some(Operand::Reg(s)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn engines_agree_on_a_loop() {
        let p = sum_to(10);
        let fast = Exec::with_engine(&p, ExecConfig::default(), Engine::Fast)
            .run(&[])
            .unwrap();
        let reference = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast.return_value, Some(45));
    }

    #[test]
    fn engines_agree_on_truncation_points() {
        let p = sum_to(1000);
        for budget in [0u64, 1, 2, 3, 7, 20, 100] {
            let cfg = ExecConfig { max_instrs: budget, ..ExecConfig::default() };
            let fast = Exec::with_engine(&p, cfg, Engine::Fast).run_bounded(&[]).unwrap();
            let reference = Interp::new(&p, cfg).run_bounded(&[]).unwrap();
            assert_eq!(fast, reference, "budget {budget}");
        }
    }

    #[test]
    fn with_engine_scopes_and_restores() {
        assert_eq!(current_engine(), Engine::Fast);
        with_engine(Engine::Reference, || {
            assert_eq!(current_engine(), Engine::Reference);
            with_engine(Engine::Fast, || assert_eq!(current_engine(), Engine::Fast));
            assert_eq!(current_engine(), Engine::Reference);
        });
        assert_eq!(current_engine(), Engine::Fast);
        let p = sum_to(3);
        let e = with_engine(Engine::Reference, || Exec::new(&p, ExecConfig::default()).engine());
        assert_eq!(e, Engine::Reference);
    }

    #[test]
    fn cached_decode_reuses_streams() {
        let p = sum_to(5);
        let mut cache = AnalysisCache::new();
        let a = Exec::new_cached(&p, ExecConfig::default(), &mut cache);
        let b = Exec::new_cached(&p, ExecConfig::default(), &mut cache);
        assert_eq!(a.run(&[]).unwrap(), b.run(&[]).unwrap());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1), "second decode hits the memo");
    }
}
