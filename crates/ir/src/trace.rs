//! Dynamic execution trace observation.
//!
//! The interpreter reports every basic-block entry (and procedure
//! entry/exit) to a [`TraceSink`]. Profilers in `pps-profile` and the timing
//! simulator in `pps-sim` are implemented as sinks, so the same reference
//! execution drives profiling, cycle accounting and differential testing.

use crate::proc::BlockId;
use crate::program::ProcId;

/// Observer of a dynamic execution.
///
/// Block events arrive in execution order. `enter_proc`/`exit_proc` bracket
/// each activation, which lets per-procedure profilers keep one path window
/// per activation (exact under recursion).
pub trait TraceSink {
    /// A new activation of `proc` begins (before its entry block event).
    fn enter_proc(&mut self, proc: ProcId);
    /// The current activation of `proc` returns.
    fn exit_proc(&mut self, proc: ProcId);
    /// Control enters `block` of the current activation of `proc`.
    fn block(&mut self, proc: ProcId, block: BlockId);
}

/// A sink that discards all events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn enter_proc(&mut self, _proc: ProcId) {}
    #[inline]
    fn exit_proc(&mut self, _proc: ProcId) {}
    #[inline]
    fn block(&mut self, _proc: ProcId, _block: BlockId) {}
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEvent {
    /// Activation of the procedure began.
    Enter(ProcId),
    /// Activation of the procedure ended.
    Exit(ProcId),
    /// The block was entered.
    Block(ProcId, BlockId),
}

/// A sink that records all events into a vector (tests and small programs
/// only; real experiments stream events instead).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecSink {
    /// Recorded events in execution order.
    pub events: Vec<BlockEvent>,
}

impl VecSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Just the block events, dropping enter/exit markers.
    pub fn blocks(&self) -> Vec<(ProcId, BlockId)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                BlockEvent::Block(p, b) => Some((*p, *b)),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for VecSink {
    fn enter_proc(&mut self, proc: ProcId) {
        self.events.push(BlockEvent::Enter(proc));
    }
    fn exit_proc(&mut self, proc: ProcId) {
        self.events.push(BlockEvent::Exit(proc));
    }
    fn block(&mut self, proc: ProcId, block: BlockId) {
        self.events.push(BlockEvent::Block(proc, block));
    }
}

/// A sink that counts events without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountSink {
    /// Number of block-entry events.
    pub blocks: u64,
    /// Number of procedure activations.
    pub activations: u64,
}

impl CountSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for CountSink {
    #[inline]
    fn enter_proc(&mut self, _proc: ProcId) {
        self.activations += 1;
    }
    #[inline]
    fn exit_proc(&mut self, _proc: ProcId) {}
    #[inline]
    fn block(&mut self, _proc: ProcId, _block: BlockId) {
        self.blocks += 1;
    }
}

/// Fans one event stream out to two sinks.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over the two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn enter_proc(&mut self, proc: ProcId) {
        self.a.enter_proc(proc);
        self.b.enter_proc(proc);
    }
    fn exit_proc(&mut self, proc: ProcId) {
        self.a.exit_proc(proc);
        self.b.exit_proc(proc);
    }
    fn block(&mut self, proc: ProcId, block: BlockId) {
        self.a.block(proc, block);
        self.b.block(proc, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        let p = ProcId::new(0);
        s.enter_proc(p);
        s.block(p, BlockId::new(0));
        s.block(p, BlockId::new(2));
        s.exit_proc(p);
        assert_eq!(
            s.events,
            vec![
                BlockEvent::Enter(p),
                BlockEvent::Block(p, BlockId::new(0)),
                BlockEvent::Block(p, BlockId::new(2)),
                BlockEvent::Exit(p),
            ]
        );
        assert_eq!(s.blocks().len(), 2);
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::new();
        let p = ProcId::new(0);
        s.enter_proc(p);
        s.block(p, BlockId::new(0));
        s.block(p, BlockId::new(1));
        s.exit_proc(p);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.activations, 1);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut t = TeeSink::new(CountSink::new(), VecSink::new());
        let p = ProcId::new(1);
        t.enter_proc(p);
        t.block(p, BlockId::new(3));
        t.exit_proc(p);
        assert_eq!(t.a.blocks, 1);
        assert_eq!(t.b.events.len(), 3);
    }
}
