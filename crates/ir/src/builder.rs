//! Ergonomic construction of programs, procedures, and CFGs.
//!
//! [`ProgramBuilder`] collects procedures; [`FuncBuilder`] builds one
//! procedure's CFG with a "current block" cursor. Blocks may be created ahead
//! of time (forward references) with [`FuncBuilder::new_block`] and filled in
//! later via [`FuncBuilder::switch_to`].
//!
//! ```
//! use pps_ir::builder::ProgramBuilder;
//! use pps_ir::{AluOp, Operand, Reg};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.begin_proc("abs", 1);
//! let x = Reg::new(0);
//! let neg = f.new_block();
//! let pos = f.new_block();
//! let c = f.reg();
//! f.alu(AluOp::CmpLt, c, Operand::Reg(x), Operand::Imm(0));
//! f.branch(c, neg, pos);
//! f.switch_to(neg);
//! let y = f.reg();
//! f.alu(AluOp::Sub, y, Operand::Imm(0), Operand::Reg(x));
//! f.ret(Some(Operand::Reg(y)));
//! f.switch_to(pos);
//! f.ret(Some(Operand::Reg(x)));
//! let abs = f.finish();
//! let program = pb.finish(abs);
//! assert_eq!(program.procs.len(), 1);
//! ```

use crate::instr::{AluOp, Instr, Operand, Terminator};
use crate::proc::{Block, BlockId, Proc, Reg};
use crate::program::{ProcId, Program};

/// Default memory size for built programs, in 64-bit words (1 MiB).
pub const DEFAULT_MEM_WORDS: usize = 1 << 17;

/// Builder for a whole [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    procs: Vec<Option<Proc>>,
    names: Vec<String>,
    mem_size: usize,
    data: Vec<i64>,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default memory size.
    pub fn new() -> Self {
        ProgramBuilder {
            procs: Vec::new(),
            names: Vec::new(),
            mem_size: DEFAULT_MEM_WORDS,
            data: Vec::new(),
        }
    }

    /// Sets the memory size (words) and initial data section.
    ///
    /// # Panics
    /// Panics if `data.len() > mem_size`.
    pub fn set_memory(&mut self, mem_size: usize, data: Vec<i64>) -> &mut Self {
        assert!(data.len() <= mem_size, "data exceeds memory size");
        self.mem_size = mem_size;
        self.data = data;
        self
    }

    /// Declares a procedure (fixing its id and arity) without defining its
    /// body yet. Enables mutual recursion and forward calls.
    pub fn declare_proc(&mut self, name: impl Into<String>, num_params: u32) -> ProcId {
        let id = ProcId::new(self.procs.len() as u32);
        let name = name.into();
        self.names.push(name.clone());
        let mut p = Proc::new(name, num_params);
        p.reg_count = num_params;
        self.procs.push(Some(p));
        id
    }

    /// Declares a procedure and immediately begins building its body.
    pub fn begin_proc(&mut self, name: impl Into<String>, num_params: u32) -> FuncBuilder<'_> {
        let id = self.declare_proc(name, num_params);
        self.begin_declared(id)
    }

    /// Begins building the body of a previously declared procedure.
    ///
    /// # Panics
    /// Panics if the procedure is currently being built or was never
    /// declared.
    pub fn begin_declared(&mut self, id: ProcId) -> FuncBuilder<'_> {
        let mut proc = self.procs[id.index()]
            .take()
            .expect("procedure already being built");
        // Create the entry block eagerly.
        let entry = proc.push_block(Block::new(Vec::new(), Terminator::Return { value: None }));
        proc.entry = entry;
        FuncBuilder {
            parent: self,
            id,
            proc,
            current: entry,
            pending: Vec::new(),
            closed: vec![false],
        }
    }

    /// Parameter count of a declared procedure.
    pub fn arity(&self, id: ProcId) -> u32 {
        self.procs[id.index()]
            .as_ref()
            .map(|p| p.num_params)
            .unwrap_or_else(|| panic!("procedure {id} is being built"))
    }

    /// Finalizes the program with `entry` as the entry procedure.
    ///
    /// # Panics
    /// Panics if any declared procedure was never defined (has no blocks).
    pub fn finish(self, entry: ProcId) -> Program {
        let procs: Vec<Proc> = self
            .procs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let p = p.unwrap_or_else(|| panic!("procedure {i} still being built"));
                assert!(
                    !p.blocks.is_empty(),
                    "procedure `{}` declared but never defined",
                    p.name
                );
                p
            })
            .collect();
        Program::new(procs, entry, self.mem_size, self.data)
    }
}

/// Builder for one procedure's CFG.
///
/// Instruction methods append to the *current block*; terminator methods
/// ([`jump`](Self::jump), [`branch`](Self::branch), [`switch`](Self::switch),
/// [`ret`](Self::ret)) close it. After closing a block, select the next one
/// with [`switch_to`](Self::switch_to).
#[derive(Debug)]
pub struct FuncBuilder<'a> {
    parent: &'a mut ProgramBuilder,
    id: ProcId,
    proc: Proc,
    current: BlockId,
    pending: Vec<Instr>,
    closed: Vec<bool>,
}

impl FuncBuilder<'_> {
    /// Id of the procedure being built.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Entry block of the procedure.
    pub fn entry(&self) -> BlockId {
        self.proc.entry
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        self.proc.fresh_reg()
    }

    /// Creates an empty, not-yet-closed block for later filling.
    pub fn new_block(&mut self) -> BlockId {
        let id = self
            .proc
            .push_block(Block::new(Vec::new(), Terminator::Return { value: None }));
        self.closed.push(false);
        id
    }

    /// Moves the cursor to `block` so subsequent instructions append there.
    ///
    /// # Panics
    /// Panics if the current block has pending instructions but no
    /// terminator yet, or if `block` was already closed.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.pending.is_empty(),
            "block {} has pending instructions but no terminator",
            self.current
        );
        assert!(
            !self.closed[block.index()],
            "block {block} was already terminated"
        );
        self.current = block;
    }

    /// Appends an ALU instruction.
    pub fn alu(&mut self, op: AluOp, dst: Reg, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.push(Instr::Alu { op, dst, lhs: lhs.into(), rhs: rhs.into() });
    }

    /// Appends a move.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Instr::Mov { dst, src: src.into() });
    }

    /// Appends a (normal, excepting) load.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.push(Instr::Load { dst, base, offset, speculative: false });
    }

    /// Appends a speculative (non-excepting) load.
    pub fn load_spec(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.push(Instr::Load { dst, base, offset, speculative: true });
    }

    /// Appends a store.
    pub fn store(&mut self, src: impl Into<Operand>, base: Reg, offset: i64) {
        self.push(Instr::Store { src: src.into(), base, offset });
    }

    /// Appends a call.
    pub fn call(&mut self, callee: ProcId, args: Vec<Operand>, dst: Option<Reg>) {
        self.push(Instr::Call { callee, args, dst });
    }

    /// Appends an output instruction.
    pub fn out(&mut self, src: impl Into<Operand>) {
        self.push(Instr::Out { src: src.into() });
    }

    /// Appends a no-op.
    pub fn nop(&mut self) {
        self.push(Instr::Nop);
    }

    /// Appends an arbitrary instruction.
    pub fn push(&mut self, instr: Instr) {
        assert!(
            !self.closed[self.current.index()],
            "appending to closed block {}",
            self.current
        );
        self.pending.push(instr);
    }

    /// Closes the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.close(Terminator::Jump { target });
    }

    /// Closes the current block with a conditional branch.
    pub fn branch(&mut self, cond: Reg, taken: BlockId, not_taken: BlockId) {
        self.close(Terminator::Branch { cond, taken, not_taken });
    }

    /// Closes the current block with a multiway branch.
    pub fn switch(&mut self, sel: Reg, targets: Vec<BlockId>, default: BlockId) {
        self.close(Terminator::Switch { sel, targets, default });
    }

    /// Closes the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.close(Terminator::Return { value });
    }

    /// Closes the current block with an arbitrary terminator.
    pub fn close(&mut self, term: Terminator) {
        let idx = self.current.index();
        assert!(!self.closed[idx], "block {} terminated twice", self.current);
        let block = &mut self.proc.blocks[idx];
        block.instrs = std::mem::take(&mut self.pending);
        block.term = term;
        self.proc.touch();
        self.closed[idx] = true;
    }

    /// Finishes the procedure, depositing it into the parent builder.
    ///
    /// # Panics
    /// Panics if any created block was never terminated.
    pub fn finish(self) -> ProcId {
        assert!(self.pending.is_empty(), "current block not terminated");
        for (i, closed) in self.closed.iter().enumerate() {
            assert!(*closed, "block b{i} of `{}` never terminated", self.proc.name);
        }
        let slot = &mut self.parent.procs[self.id.index()];
        debug_assert!(slot.is_none());
        *slot = Some(self.proc);
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExecConfig, Interp};

    #[test]
    fn forward_reference_blocks() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let later = f.new_block();
        f.jump(later);
        f.switch_to(later);
        f.out(Operand::Imm(9));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(r.output, vec![9]);
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let dangling = f.new_block();
        let _ = dangling;
        f.ret(None);
        f.finish();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        f.ret(None);
        f.ret(None);
    }

    #[test]
    fn mutual_recursion_via_declare() {
        // even(n) = n == 0 ? 1 : odd(n-1); odd(n) = n == 0 ? 0 : even(n-1)
        let mut pb = ProgramBuilder::new();
        let even = pb.declare_proc("even", 1);
        let odd = pb.declare_proc("odd", 1);
        for (me, other, base_val) in [(even, odd, 1i64), (odd, even, 0i64)] {
            let mut f = pb.begin_declared(me);
            let n = Reg::new(0);
            let c = f.reg();
            let bb = f.new_block();
            let rb = f.new_block();
            f.alu(AluOp::CmpEq, c, n, 0i64);
            f.branch(c, bb, rb);
            f.switch_to(bb);
            f.ret(Some(Operand::Imm(base_val)));
            f.switch_to(rb);
            let m = f.reg();
            let res = f.reg();
            f.alu(AluOp::Sub, m, n, 1i64);
            f.call(other, vec![Operand::Reg(m)], Some(res));
            f.ret(Some(Operand::Reg(res)));
            f.finish();
        }
        let mut f = pb.begin_proc("main", 1);
        let r = f.reg();
        f.call(even, vec![Operand::Reg(Reg::new(0))], Some(r));
        f.ret(Some(Operand::Reg(r)));
        let main = f.finish();
        let p = pb.finish(main);
        let interp = Interp::new(&p, ExecConfig::default());
        assert_eq!(interp.run(&[10]).unwrap().return_value, Some(1));
        assert_eq!(interp.run(&[7]).unwrap().return_value, Some(0));
    }

    #[test]
    fn memory_configuration() {
        let mut pb = ProgramBuilder::new();
        pb.set_memory(16, vec![5, 6]);
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        let v = f.reg();
        f.mov(a, 1i64);
        f.load(v, a, 0);
        f.out(v);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        assert_eq!(p.mem_size, 16);
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(r.output, vec![6]);
    }
}
