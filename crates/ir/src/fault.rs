//! Seeded fault injection for validating the pipeline's guardrails.
//!
//! The fault-tolerance claim in this repository — "a miscompilation in any
//! pass is caught by the structural verifier or the differential oracle and
//! degraded away, never silently shipped" — is only testable if we can
//! *produce* miscompilations on demand. [`FaultInjector`] corrupts a
//! procedure of an already-transformed program the way a buggy pass would:
//! retargeting a branch, swapping non-commutative operands, dropping an
//! instruction, clobbering a register index, or pointing a terminator at a
//! nonexistent block.
//!
//! Not every syntactic corruption changes behaviour (dropping a dead
//! instruction, retargeting a never-taken branch), so the harness entry
//! point is [`FaultInjector::inject_effective`]: it retries seeded
//! candidate corruptions until one provably matters — the structural
//! verifier rejects it, or a bounded reference interpretation of the
//! corrupted program observably diverges from the uncorrupted one on the
//! given inputs. Faults filtered this way are exactly the ones the
//! guardrails must catch, making "100% of injected faults detected" a
//! well-defined acceptance criterion.

use crate::instr::{AluOp, Instr, Terminator};
use crate::exec::Exec;
use crate::interp::ExecConfig;
use crate::proc::{BlockId, Reg};
use crate::program::{ProcId, Program};
use crate::verify::verify_program;
use std::fmt;

/// The kinds of corruption a buggy pass plausibly introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Redirect one successor of a branch/jump/switch to a different
    /// (valid) block.
    RetargetBranch,
    /// Swap the operands of a non-commutative ALU instruction.
    SwapOperands,
    /// Replace an instruction with `Nop`.
    DropInstr,
    /// Rewrite an instruction's destination to an out-of-range register.
    ClobberReg,
    /// Point a terminator successor at a nonexistent block id.
    BadTarget,
}

impl FaultKind {
    /// All kinds, in the order the injector cycles through them.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::RetargetBranch,
        FaultKind::SwapOperands,
        FaultKind::DropInstr,
        FaultKind::ClobberReg,
        FaultKind::BadTarget,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::RetargetBranch => "retarget-branch",
            FaultKind::SwapOperands => "swap-operands",
            FaultKind::DropInstr => "drop-instr",
            FaultKind::ClobberReg => "clobber-reg",
            FaultKind::BadTarget => "bad-target",
        };
        f.write_str(s)
    }
}

/// A fault that was actually applied to a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Corrupted procedure.
    pub proc: ProcId,
    /// Corrupted block within it.
    pub block: BlockId,
    /// What was done.
    pub kind: FaultKind,
    /// Human-readable description of the exact mutation.
    pub detail: String,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {} {}: {}", self.kind, self.proc, self.block, self.detail)
    }
}

/// Seeded source of IR corruptions.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector; equal seeds produce equal fault sequences.
    pub fn new(seed: u64) -> Self {
        // Avoid the splitmix64 fixed point at zero state.
        FaultInjector { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// splitmix64 — self-contained so `pps-ir` keeps zero dependencies.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Applies one random corruption to procedure `pid`, with no
    /// guarantee of observable effect. Returns `None` when the procedure
    /// offers no site for any fault kind (e.g. a single empty block with a
    /// bare return and no other block to retarget to).
    pub fn inject(&mut self, program: &mut Program, pid: ProcId) -> Option<FaultRecord> {
        // Try each kind starting from a random one so the distribution over
        // kinds stays roughly uniform even when some have no sites.
        let start = self.pick(FaultKind::ALL.len());
        for i in 0..FaultKind::ALL.len() {
            let kind = FaultKind::ALL[(start + i) % FaultKind::ALL.len()];
            if let Some(record) = self.try_kind(program, pid, kind) {
                return Some(record);
            }
        }
        None
    }

    /// Injects a fault into `pid` that is *provably effective*: after the
    /// corruption, either [`verify_program`] rejects the program, or a
    /// bounded interpretation on one of `inputs` observably diverges from
    /// the uncorrupted program. Retries up to `attempts` seeded candidates
    /// (each on a scratch clone) before giving up.
    ///
    /// Returns the applied fault, or `None` if no effective fault was found
    /// — callers should treat that as "skip this program", not as a
    /// guardrail failure.
    pub fn inject_effective(
        &mut self,
        program: &mut Program,
        pid: ProcId,
        inputs: &[Vec<i64>],
        budget: u64,
        attempts: u32,
    ) -> Option<FaultRecord> {
        let config = ExecConfig { max_instrs: budget, ..ExecConfig::default() };
        let exec = Exec::new(program, config);
        let baseline: Vec<_> = inputs.iter().map(|args| exec.run_bounded(args)).collect();
        for _ in 0..attempts {
            let mut candidate = program.clone();
            let Some(record) = self.inject(&mut candidate, pid) else {
                return None; // no sites at all; more attempts won't help
            };
            if verify_program(&candidate).is_err() {
                *program = candidate;
                return Some(record);
            }
            let candidate_exec = Exec::new(&candidate, config);
            let diverges = inputs.iter().zip(&baseline).any(|(args, base)| {
                let run = candidate_exec.run_bounded(args);
                observably_differs(base, &run)
            });
            if diverges {
                *program = candidate;
                return Some(record);
            }
        }
        None
    }

    fn try_kind(
        &mut self,
        program: &mut Program,
        pid: ProcId,
        kind: FaultKind,
    ) -> Option<FaultRecord> {
        match kind {
            FaultKind::RetargetBranch => self.retarget_branch(program, pid),
            FaultKind::SwapOperands => self.swap_operands(program, pid),
            FaultKind::DropInstr => self.drop_instr(program, pid),
            FaultKind::ClobberReg => self.clobber_reg(program, pid),
            FaultKind::BadTarget => self.bad_target(program, pid),
        }
    }

    fn retarget_branch(&mut self, program: &mut Program, pid: ProcId) -> Option<FaultRecord> {
        let proc = program.proc_mut(pid);
        let n_blocks = proc.blocks.len();
        if n_blocks < 2 {
            return None;
        }
        // Sites: every successor slot of every terminator.
        let sites: Vec<(usize, usize)> = proc
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| {
                let n = match &b.term {
                    Terminator::Jump { .. } => 1,
                    Terminator::Branch { .. } => 2,
                    Terminator::Switch { targets, .. } => targets.len() + 1,
                    Terminator::Return { .. } => 0,
                };
                (0..n).map(move |slot| (bi, slot))
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let (bi, slot) = sites[self.pick(sites.len())];
        let old = successor_slot(&proc.blocks[bi].term, slot);
        // A different, in-range block.
        let mut new = BlockId::new(self.pick(n_blocks) as u32);
        if new == old {
            new = BlockId::new(((new.index() + 1) % n_blocks) as u32);
        }
        if new == old {
            return None;
        }
        *successor_slot_mut(&mut proc.blocks[bi].term, slot) = new;
        proc.touch();
        Some(FaultRecord {
            proc: pid,
            block: BlockId::new(bi as u32),
            kind: FaultKind::RetargetBranch,
            detail: format!("successor slot {slot}: {old} -> {new}"),
        })
    }

    fn swap_operands(&mut self, program: &mut Program, pid: ProcId) -> Option<FaultRecord> {
        let proc = program.proc_mut(pid);
        let sites: Vec<(usize, usize)> = proc
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| {
                b.instrs.iter().enumerate().filter_map(move |(ii, instr)| {
                    match instr {
                        Instr::Alu { op, lhs, rhs, .. }
                            if !commutative(*op) && lhs != rhs =>
                        {
                            Some((bi, ii))
                        }
                        _ => None,
                    }
                })
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let (bi, ii) = sites[self.pick(sites.len())];
        if let Instr::Alu { op, lhs, rhs, .. } = &mut proc.blocks[bi].instrs[ii] {
            std::mem::swap(lhs, rhs);
            let detail = format!("instr {ii}: swapped operands of {op:?}");
            proc.touch();
            return Some(FaultRecord {
                proc: pid,
                block: BlockId::new(bi as u32),
                kind: FaultKind::SwapOperands,
                detail,
            });
        }
        unreachable!("site list only contains ALU instructions");
    }

    fn drop_instr(&mut self, program: &mut Program, pid: ProcId) -> Option<FaultRecord> {
        let proc = program.proc_mut(pid);
        let sites: Vec<(usize, usize)> = proc
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| {
                b.instrs
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| !matches!(i, Instr::Nop))
                    .map(move |(ii, _)| (bi, ii))
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let (bi, ii) = sites[self.pick(sites.len())];
        let old = std::mem::replace(&mut proc.blocks[bi].instrs[ii], Instr::Nop);
        proc.touch();
        Some(FaultRecord {
            proc: pid,
            block: BlockId::new(bi as u32),
            kind: FaultKind::DropInstr,
            detail: format!("instr {ii}: dropped {old:?}"),
        })
    }

    fn clobber_reg(&mut self, program: &mut Program, pid: ProcId) -> Option<FaultRecord> {
        let proc = program.proc_mut(pid);
        let bad = Reg::new(proc.reg_count + 7);
        let sites: Vec<(usize, usize)> = proc
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| {
                b.instrs
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| {
                        matches!(
                            i,
                            Instr::Alu { .. } | Instr::Mov { .. } | Instr::Load { .. }
                        )
                    })
                    .map(move |(ii, _)| (bi, ii))
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let (bi, ii) = sites[self.pick(sites.len())];
        match &mut proc.blocks[bi].instrs[ii] {
            Instr::Alu { dst, .. } | Instr::Mov { dst, .. } | Instr::Load { dst, .. } => {
                let old = *dst;
                *dst = bad;
                let record = Some(FaultRecord {
                    proc: pid,
                    block: BlockId::new(bi as u32),
                    kind: FaultKind::ClobberReg,
                    detail: format!("instr {ii}: dst {old} -> out-of-range {bad}"),
                });
                proc.touch();
                record
            }
            _ => unreachable!("site list only contains register-writing instructions"),
        }
    }

    fn bad_target(&mut self, program: &mut Program, pid: ProcId) -> Option<FaultRecord> {
        let proc = program.proc_mut(pid);
        let n_blocks = proc.blocks.len();
        let sites: Vec<(usize, usize)> = proc
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| {
                let n = match &b.term {
                    Terminator::Jump { .. } => 1,
                    Terminator::Branch { .. } => 2,
                    Terminator::Switch { targets, .. } => targets.len() + 1,
                    Terminator::Return { .. } => 0,
                };
                (0..n).map(move |slot| (bi, slot))
            })
            .collect();
        if sites.is_empty() {
            return None;
        }
        let (bi, slot) = sites[self.pick(sites.len())];
        let bad = BlockId::new((n_blocks + 3) as u32);
        let old = successor_slot(&proc.blocks[bi].term, slot);
        *successor_slot_mut(&mut proc.blocks[bi].term, slot) = bad;
        proc.touch();
        Some(FaultRecord {
            proc: pid,
            block: BlockId::new(bi as u32),
            kind: FaultKind::BadTarget,
            detail: format!("successor slot {slot}: {old} -> nonexistent {bad}"),
        })
    }
}

/// Whether the two bounded runs are observably identical as far as both got.
///
/// Divergence is only claimed when it is *certain*: mismatched output
/// prefixes, or (when both runs completed) any difference in output, return
/// value, or final memory. An error on the corrupted run also counts — the
/// oracle in the guard surfaces execution errors. Two truncated runs with
/// consistent prefixes are treated as "no observable difference".
fn observably_differs(
    base: &Result<crate::interp::BoundedRun, crate::interp::ExecError>,
    run: &Result<crate::interp::BoundedRun, crate::interp::ExecError>,
) -> bool {
    match (base, run) {
        (Ok(b), Ok(r)) => {
            if b.completed && r.completed {
                b.result.output != r.result.output
                    || b.result.return_value != r.result.return_value
                    || b.result.memory != r.result.memory
            } else {
                let n = b.result.output.len().min(r.result.output.len());
                // A completed run's output is total: the truncated side's
                // prefix must not be longer, and prefixes must agree.
                b.result.output[..n] != r.result.output[..n]
                    || (b.completed && r.result.output.len() > b.result.output.len())
                    || (r.completed && b.result.output.len() > r.result.output.len())
            }
        }
        // Baseline ran, corrupted program errored (or vice versa).
        (Ok(_), Err(_)) | (Err(_), Ok(_)) => true,
        (Err(be), Err(re)) => be != re,
    }
}

fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add
            | AluOp::Mul
            | AluOp::And
            | AluOp::Or
            | AluOp::Xor
            | AluOp::CmpEq
            | AluOp::CmpNe
            | AluOp::Min
            | AluOp::Max
    )
}

fn successor_slot(term: &Terminator, slot: usize) -> BlockId {
    match term {
        Terminator::Jump { target } => *target,
        Terminator::Branch { taken, not_taken, .. } => {
            if slot == 0 {
                *taken
            } else {
                *not_taken
            }
        }
        Terminator::Switch { targets, default, .. } => {
            if slot < targets.len() {
                targets[slot]
            } else {
                *default
            }
        }
        Terminator::Return { .. } => unreachable!("returns have no successors"),
    }
}

fn successor_slot_mut(term: &mut Terminator, slot: usize) -> &mut BlockId {
    match term {
        Terminator::Jump { target } => target,
        Terminator::Branch { taken, not_taken, .. } => {
            if slot == 0 {
                taken
            } else {
                not_taken
            }
        }
        Terminator::Switch { targets, default, .. } => {
            if slot < targets.len() {
                &mut targets[slot]
            } else {
                default
            }
        }
        Terminator::Return { .. } => unreachable!("returns have no successors"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::builder::ProgramBuilder;
    use crate::instr::Operand;

    /// main(n) { a = n - 1; out(a); if a { out(10) } else { out(20) }; ret a }
    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let a = f.reg();
        let t = f.new_block();
        let e = f.new_block();
        f.alu(AluOp::Sub, a, Operand::Reg(n), Operand::Imm(1));
        f.out(Operand::Reg(a));
        f.branch(a, t, e);
        f.switch_to(t);
        f.out(Operand::Imm(10));
        f.ret(Some(Operand::Reg(a)));
        f.switch_to(e);
        f.out(Operand::Imm(20));
        f.ret(Some(Operand::Reg(a)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn injector_is_deterministic() {
        let base = sample();
        let mut p1 = base.clone();
        let mut p2 = base.clone();
        let r1 = FaultInjector::new(42).inject(&mut p1, base.entry);
        let r2 = FaultInjector::new(42).inject(&mut p2, base.entry);
        assert_eq!(r1, r2);
        let r3 = FaultInjector::new(43).inject(&mut p2.clone(), base.entry);
        // Different seeds are allowed to coincide, but the common case is a
        // different fault; just ensure both produced something.
        assert!(r1.is_some() && r3.is_some());
    }

    #[test]
    fn effective_faults_are_detectable() {
        let inputs: Vec<Vec<i64>> = vec![vec![1], vec![5], vec![-3]];
        for seed in 0..50u64 {
            let base = sample();
            let mut p = base.clone();
            let mut inj = FaultInjector::new(seed);
            let record = inj
                .inject_effective(&mut p, base.entry, &inputs, 10_000, 32)
                .expect("sample program has effective faults");
            // The defining property: verification fails, or behaviour
            // observably differs on at least one input.
            if verify_program(&p).is_ok() {
                let cfg = ExecConfig { max_instrs: 10_000, ..ExecConfig::default() };
                let differs = inputs.iter().any(|args| {
                    let b = Interp::new(&base, cfg).run_bounded(args);
                    let r = Interp::new(&p, cfg).run_bounded(args);
                    observably_differs(&b, &r)
                });
                assert!(differs, "seed {seed}: fault {record} had no observable effect");
            }
        }
    }

    #[test]
    fn all_fault_kinds_reachable() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            let base = sample();
            let mut p = base.clone();
            if let Some(r) = FaultInjector::new(seed).inject(&mut p, base.entry) {
                seen.insert(format!("{}", r.kind));
                // Every corruption must actually change the program text.
                assert_ne!(
                    crate::text::print_program(&p),
                    crate::text::print_program(&base),
                    "seed {seed}: {r} was a no-op"
                );
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "kinds seen: {seen:?}");
    }
}
