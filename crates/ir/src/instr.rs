//! Instructions, operands and block terminators.
//!
//! The instruction set is deliberately Alpha-flavoured: three-operand ALU
//! operations over 64-bit integer registers, displacement-addressed loads and
//! stores against a word-addressed memory, register moves, calls, and an
//! observable [`Instr::Out`] used by differential tests to compare program
//! behaviour before and after transformation.
//!
//! Control flow lives exclusively in [`Terminator`]s, which close every basic
//! block: unconditional jumps, two-way conditional branches, multiway
//! branches (`Switch`), and returns. This matches the paper's profiling
//! granularity, where a "branch" means a conditional or multiway branch
//! (unconditional jumps do not count against the path-length limit).

use crate::proc::{BlockId, Reg};
use crate::program::ProcId;
use std::fmt;

/// Arithmetic/logical operations.
///
/// All ALU operations are *non-excepting*: division and remainder by zero
/// yield 0 (mirroring the software-checked, trap-suppressed semantics the
/// paper's compiled simulation installs), so every ALU instruction is safe to
/// speculate above a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields 0.
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// 1 if equal, else 0.
    CmpEq,
    /// 1 if not equal, else 0.
    CmpNe,
    /// 1 if less than (signed), else 0.
    CmpLt,
    /// 1 if less or equal (signed), else 0.
    CmpLe,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit values.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::CmpEq => (a == b) as i64,
            AluOp::CmpNe => (a != b) as i64,
            AluOp::CmpLt => (a < b) as i64,
            AluOp::CmpLe => (a <= b) as i64,
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }

    /// All ALU operations, for exhaustive testing and random generation.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::CmpEq,
        AluOp::CmpNe,
        AluOp::CmpLt,
        AluOp::CmpLe,
        AluOp::Min,
        AluOp::Max,
    ];
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpNe => "cmpne",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpLe => "cmple",
            AluOp::Min => "min",
            AluOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// A source operand: either a register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value of a register.
    Reg(Reg),
    /// Immediate constant.
    Imm(i64),
}

impl Operand {
    /// Returns the register if this operand reads one.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// A straight-line (non-control-transfer) instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = op(lhs, rhs)`.
    Alu {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left source operand.
        lhs: Operand,
        /// Right source operand.
        rhs: Operand,
    },
    /// `dst = src` (register move or load-immediate).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = memory[base + offset]`.
    ///
    /// A `speculative` load is the non-excepting form: an out-of-bounds
    /// address yields 0 instead of a runtime error. The compactor rewrites
    /// loads into this form when hoisting them above superblock exits.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Constant displacement added to the base.
        offset: i64,
        /// True when this is a non-excepting (speculative) load.
        speculative: bool,
    },
    /// `memory[base + offset] = src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Base address register.
        base: Reg,
        /// Constant displacement added to the base.
        offset: i64,
    },
    /// Calls `callee` with argument values; the return value, if any, is
    /// written to `dst`.
    Call {
        /// Procedure to invoke.
        callee: ProcId,
        /// Argument operands, one per callee parameter.
        args: Vec<Operand>,
        /// Register receiving the return value (0 if the callee returns
        /// nothing and `dst` is `Some`).
        dst: Option<Reg>,
    },
    /// Appends a value to the program's observable output stream.
    Out {
        /// Value emitted.
        src: Operand,
    },
    /// No operation. Used as a scheduling filler in tests.
    Nop,
}

impl Instr {
    /// Destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. } | Instr::Mov { dst, .. } | Instr::Load { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. } | Instr::Out { .. } | Instr::Nop => None,
        }
    }

    /// Appends every register read by this instruction to `out`.
    pub fn collect_uses(&self, out: &mut Vec<Reg>) {
        let mut push = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match self {
            Instr::Alu { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Instr::Mov { src, .. } | Instr::Out { src } => push(src),
            Instr::Load { base, .. } => out.push(*base),
            Instr::Store { src, base, .. } => {
                push(src);
                out.push(*base);
            }
            Instr::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Instr::Nop => {}
        }
    }

    /// Registers read by this instruction, as a fresh vector.
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.collect_uses(&mut v);
        v
    }

    /// True if the instruction touches memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// True if the instruction is a call.
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. })
    }

    /// True if this instruction may be speculated above a branch, i.e. it
    /// has no side effect other than writing its destination register and
    /// it cannot raise an exception (loads must first be converted to their
    /// non-excepting form).
    pub fn is_speculation_safe(&self) -> bool {
        match self {
            Instr::Alu { .. } | Instr::Mov { .. } | Instr::Nop => true,
            Instr::Load { speculative, .. } => *speculative,
            Instr::Store { .. } | Instr::Call { .. } | Instr::Out { .. } => false,
        }
    }

    /// True if this load could be made non-excepting for speculation.
    pub fn is_speculatable_load(&self) -> bool {
        matches!(self, Instr::Load { speculative: false, .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Instr::Mov { dst, src } => write!(f, "{dst} = mov {src}"),
            Instr::Load {
                dst,
                base,
                offset,
                speculative,
            } => {
                let spec = if *speculative { ".s" } else { "" };
                write!(f, "{dst} = load{spec} [{base}+{offset}]")
            }
            Instr::Store { src, base, offset } => write!(f, "store {src}, [{base}+{offset}]"),
            Instr::Call { callee, args, dst } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::Out { src } => write!(f, "out {src}"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

/// A control transfer closing a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Two-way conditional branch: to `taken` if `cond != 0`, else to
    /// `not_taken`.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Target when the condition is non-zero.
        taken: BlockId,
        /// Target when the condition is zero.
        not_taken: BlockId,
    },
    /// Multiway branch: to `targets[sel]` when `0 <= sel < targets.len()`,
    /// otherwise to `default`.
    Switch {
        /// Selector register.
        sel: Reg,
        /// In-range targets.
        targets: Vec<BlockId>,
        /// Out-of-range target.
        default: BlockId,
    },
    /// Return from the procedure with an optional value.
    Return {
        /// Returned value, if any.
        value: Option<Operand>,
    },
}

impl Terminator {
    /// True for conditional or multiway branches — the events that count
    /// against the paper's 15-branch path-length limit.
    pub fn is_counted_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. } | Terminator::Switch { .. })
    }

    /// All possible successor blocks, in a deterministic order
    /// (deduplicated).
    pub fn successors(&self) -> Vec<BlockId> {
        let mut v = match self {
            Terminator::Jump { target } => vec![*target],
            Terminator::Branch { taken, not_taken, .. } => vec![*taken, *not_taken],
            Terminator::Switch { targets, default, .. } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            Terminator::Return { .. } => Vec::new(),
        };
        let mut seen = Vec::new();
        v.retain(|b| {
            if seen.contains(b) {
                false
            } else {
                seen.push(*b);
                true
            }
        });
        v
    }

    /// Rewrites every successor through `f`.
    pub fn retarget(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump { target } => *target = f(*target),
            Terminator::Branch { taken, not_taken, .. } => {
                *taken = f(*taken);
                *not_taken = f(*not_taken);
            }
            Terminator::Switch { targets, default, .. } => {
                for t in targets.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            Terminator::Return { .. } => {}
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Switch { sel, .. } => vec![*sel],
            Terminator::Return { value: Some(Operand::Reg(r)) } => vec![*r],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump { target } => write!(f, "jump {target}"),
            Terminator::Branch { cond, taken, not_taken } => {
                write!(f, "br {cond} ? {taken} : {not_taken}")
            }
            Terminator::Switch { sel, targets, default } => {
                write!(f, "switch {sel} [")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "] default {default}")
            }
            Terminator::Return { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Return { value: None } => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(4, -3), -12);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Rem.eval(7, 2), 1);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-16, 2), -4);
        assert_eq!(AluOp::CmpEq.eval(3, 3), 1);
        assert_eq!(AluOp::CmpNe.eval(3, 3), 0);
        assert_eq!(AluOp::CmpLt.eval(-1, 0), 1);
        assert_eq!(AluOp::CmpLe.eval(0, 0), 1);
        assert_eq!(AluOp::Min.eval(-5, 2), -5);
        assert_eq!(AluOp::Max.eval(-5, 2), 2);
    }

    #[test]
    fn alu_eval_non_excepting_division() {
        assert_eq!(AluOp::Div.eval(42, 0), 0);
        assert_eq!(AluOp::Rem.eval(42, 0), 0);
        // i64::MIN / -1 overflows on hardware; wrapping semantics apply.
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn alu_eval_shift_masking() {
        assert_eq!(AluOp::Shl.eval(1, 64), 1, "shift of 64 masks to 0");
        assert_eq!(AluOp::Shl.eval(1, 65), 2, "shift of 65 masks to 1");
        assert_eq!(AluOp::Shr.eval(8, 67), 1);
    }

    #[test]
    fn instr_defs_and_uses() {
        let r0 = Reg::new(0);
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: r2,
            lhs: Operand::Reg(r0),
            rhs: Operand::Reg(r1),
        };
        assert_eq!(i.dst(), Some(r2));
        assert_eq!(i.uses(), vec![r0, r1]);

        let s = Instr::Store {
            src: Operand::Reg(r2),
            base: r0,
            offset: 4,
        };
        assert_eq!(s.dst(), None);
        assert_eq!(s.uses(), vec![r2, r0]);

        let c = Instr::Call {
            callee: ProcId::new(1),
            args: vec![Operand::Reg(r1), Operand::Imm(3)],
            dst: Some(r0),
        };
        assert_eq!(c.dst(), Some(r0));
        assert_eq!(c.uses(), vec![r1]);
    }

    #[test]
    fn speculation_safety() {
        let r = Reg::new(0);
        assert!(Instr::Mov { dst: r, src: Operand::Imm(1) }.is_speculation_safe());
        assert!(!Instr::Load { dst: r, base: r, offset: 0, speculative: false }
            .is_speculation_safe());
        assert!(Instr::Load { dst: r, base: r, offset: 0, speculative: true }
            .is_speculation_safe());
        assert!(!Instr::Store { src: Operand::Imm(0), base: r, offset: 0 }
            .is_speculation_safe());
        assert!(!Instr::Out { src: Operand::Imm(0) }.is_speculation_safe());
    }

    #[test]
    fn terminator_successors_dedup() {
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        let t = Terminator::Branch { cond: Reg::new(0), taken: b0, not_taken: b0 };
        assert_eq!(t.successors(), vec![b0]);
        let s = Terminator::Switch {
            sel: Reg::new(0),
            targets: vec![b0, b1, b0],
            default: b1,
        };
        assert_eq!(s.successors(), vec![b0, b1]);
    }

    #[test]
    fn terminator_retarget() {
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        let b9 = BlockId::new(9);
        let mut t = Terminator::Branch { cond: Reg::new(0), taken: b0, not_taken: b1 };
        t.retarget(|b| if b == b0 { b9 } else { b });
        assert_eq!(t.successors(), vec![b9, b1]);
    }

    #[test]
    fn display_round_trip_smoke() {
        let r0 = Reg::new(0);
        let i = Instr::Load { dst: r0, base: r0, offset: 8, speculative: true };
        assert_eq!(format!("{i}"), "r0 = load.s [r0+8]");
        let t = Terminator::Jump { target: BlockId::new(3) };
        assert_eq!(format!("{t}"), "jump b3");
    }
}
