//! k-iteration Ball–Larus profiler lockdown (the `Pk*` schemes' profile
//! kind).
//!
//! Three layers of evidence:
//!
//! - **k=1 differential identity** — chopping at the first back-edge
//!   crossing is, by construction, the forward profiler: on every suite
//!   benchmark and across random multi-procedure programs, the k=1
//!   chopper's path multiset equals [`ForwardPathProfiler`]'s exactly.
//! - **Merge algebra** — `merge_kpaths` is commutative and associative
//!   down to byte-identical canonical text, the property the serving
//!   aggregate relies on to fold worker shards in any order.
//! - **Canonical text** — serialize → parse → serialize is a fixpoint and
//!   preserves equality.

use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::trace::TeeSink;
use pps::ir::BlockId;
use pps::profile::serialize::{kpath_from_text, kpath_to_text};
use pps::profile::{merge_kpaths, ForwardPathProfiler, KPathProfile, KPathProfiler};
use pps::suite::{all_benchmarks, Scale};
use pps::testgen::{gen_program, GenConfig};
use proptest::prelude::*;

/// Sorted `(path, count)` list — the order-free view both profilers must
/// agree on.
fn sorted_paths<'a>(
    iter: impl Iterator<Item = (&'a [BlockId], u64)>,
) -> Vec<(Vec<BlockId>, u64)> {
    let mut v: Vec<_> = iter.map(|(p, c)| (p.to_vec(), c)).collect();
    v.sort();
    v
}

/// One traced run feeding the forward profiler and the k=1 chopper;
/// asserts identical path multisets per procedure.
fn assert_k1_identity(program: &pps::ir::Program, args: &[i64], label: &str) {
    let mut tee =
        TeeSink::new(ForwardPathProfiler::new(program), KPathProfiler::new(program, 1));
    Interp::new(program, ExecConfig::default())
        .run_traced(args, &mut tee)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let fwd = tee.a.finish();
    let k1 = tee.b.finish();
    for pid in program.proc_ids() {
        assert_eq!(
            sorted_paths(k1.iter_paths(pid)),
            sorted_paths(fwd.iter_paths(pid)),
            "{label}: k=1 multiset diverges from the forward profiler in {pid}"
        );
    }
}

/// Satellite requirement: the identity holds on every suite benchmark —
/// real loop nests, switches, and call structures, not just generated
/// CFGs — over the training input.
#[test]
fn k1_matches_forward_profiler_on_every_suite_benchmark() {
    for bench in all_benchmarks(Scale::quick()) {
        assert_k1_identity(&bench.program, &bench.train_args, bench.name);
    }
}

/// A k-path profile for `seed`'s generated program, accumulated over
/// `runs` executions (so differently-trained profiles of one program have
/// genuinely different counts to merge).
fn trained(seed: u64, k: usize, runs: usize) -> KPathProfile {
    let program = gen_program(seed, GenConfig::default());
    let mut prof = KPathProfiler::new(&program, k);
    let interp = Interp::new(&program, ExecConfig::default());
    for _ in 0..runs {
        interp.run_traced(&[], &mut prof).unwrap();
    }
    prof.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn k1_matches_forward_profiler_on_random_programs(seed in 0u64..100_000) {
        let program = gen_program(seed, GenConfig::default());
        assert_k1_identity(&program, &[], &format!("seed {seed}"));
    }

    /// Merging is commutative and associative down to the canonical bytes
    /// (profiles trained at different k refuse to merge — covered by the
    /// unit tests in `pps-profile`).
    #[test]
    fn kpath_merge_is_commutative_and_associative(
        seed in 0u64..50_000,
        ra in 1u32..4,
        rb in 1u32..4,
        rc in 1u32..4,
        k in 1u32..4,
    ) {
        // Merging requires one program shape, so all three profiles come
        // from `seed`'s program; differing run counts give them genuinely
        // different counts.
        let k = k as usize;
        let a = trained(seed, k, ra as usize);
        let b = trained(seed, k, rb as usize);
        let c = trained(seed, k, rc as usize);

        let ab = merge_kpaths(&a, &b).unwrap();
        let ba = merge_kpaths(&b, &a).unwrap();
        prop_assert_eq!(kpath_to_text(&ab), kpath_to_text(&ba), "commutativity");

        let ab_c = merge_kpaths(&ab, &c).unwrap();
        let a_bc = merge_kpaths(&a, &merge_kpaths(&b, &c).unwrap()).unwrap();
        prop_assert_eq!(kpath_to_text(&ab_c), kpath_to_text(&a_bc), "associativity");
    }

    /// Canonical text is a fixpoint: serialize → parse → serialize yields
    /// the identical bytes and an equal profile.
    #[test]
    fn kpath_text_round_trips(seed in 0u64..100_000, k in 1u32..4) {
        let prof = trained(seed, k as usize, 1);
        let text = kpath_to_text(&prof);
        let reparsed = kpath_from_text(&text).unwrap();
        prop_assert_eq!(&reparsed, &prof);
        prop_assert_eq!(kpath_to_text(&reparsed), text);
    }

    /// The derived path profile never invents transitions: any window the
    /// derivation scores was a substring of some recorded k-path.
    #[test]
    fn derived_windows_are_kpath_substrings(seed in 0u64..50_000, k in 2u32..4) {
        let prof = trained(seed, k as usize, 1);
        let program = gen_program(seed, GenConfig::default());
        let derived = prof.to_path_profile(15);
        for pid in program.proc_ids() {
            for (window, count) in derived.iter_maximal_windows(pid) {
                if count == 0 {
                    continue;
                }
                let witnessed = prof.iter_paths(pid).any(|(path, _)| {
                    path.windows(window.len().min(path.len()))
                        .any(|w| w == window.as_slice())
                });
                prop_assert!(
                    witnessed,
                    "seed {} {:?}: derived window {:?} not a substring of any k-path",
                    seed, pid, window
                );
            }
        }
    }
}
