//! Property test: the textual IR round-trips every generated program, and
//! the parsed result executes identically.

use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::text::{parse_program, print_program};
use pps::testgen::{gen_program, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn textual_ir_round_trips(seed in 0u64..1_000_000) {
        let p = gen_program(seed, GenConfig::default());
        let text = print_program(&p);
        let q = parse_program(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        prop_assert_eq!(&p, &q);
        // Printing is a fixpoint.
        prop_assert_eq!(print_program(&q), text);
    }

    #[test]
    fn parsed_programs_execute_identically(seed in 0u64..1_000_000) {
        let p = gen_program(seed, GenConfig::default());
        let q = parse_program(&print_program(&p)).unwrap();
        let a = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        let b = Interp::new(&q, ExecConfig::default()).run(&[]).unwrap();
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.return_value, b.return_value);
        prop_assert_eq!(a.counts.instrs, b.counts.instrs);
    }
}

/// The transformed (formed + compacted) program also round-trips: the text
/// format must cover everything the pipeline produces (speculative loads,
/// stubs, compensation chains).
#[test]
fn transformed_programs_round_trip() {
    use pps::compact::{compact_program, CompactConfig};
    use pps::core::{form_program, FormConfig, Scheme};
    use pps::ir::trace::TeeSink;
    use pps::profile::{EdgeProfiler, PathProfiler};

    for seed in 0..40u64 {
        let mut p = gen_program(seed, GenConfig::default());
        let mut tee = TeeSink::new(EdgeProfiler::new(&p), PathProfiler::new(&p, 15));
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut tee)
            .unwrap();
        let formed = form_program(
            &mut p,
            &tee.a.finish(),
            Some(&tee.b.finish()),
            Scheme::P4,
            &FormConfig::default(),
        )
        .unwrap();
        let _ = compact_program(&mut p, &formed.partition, &CompactConfig::default());
        let text = print_program(&p);
        let q = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(p, q, "seed {seed}");
    }
}
