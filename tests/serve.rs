//! End-to-end test of the compile service: a real daemon (in a background
//! thread) serving the real pipeline, driven concurrently, with every
//! reply checked byte-for-byte against the in-process [`pps::serve::execute`].

use pps::harness::loadgen::{self, LoadgenConfig};
use pps::obs::Obs;
use pps::serve::proto::{encode_response, Envelope, Request, Response};
use pps::serve::server::{ServeConfig, ServerHandle};
use pps::serve::service::PipelineHandler;
use pps::serve::Client;
use std::sync::Arc;
use std::time::Duration;

fn spawn_daemon() -> ServerHandle {
    let config = ServeConfig { poll: Duration::from_millis(5), ..ServeConfig::default() };
    ServerHandle::spawn("127.0.0.1:0", config, Arc::new(PipelineHandler), Obs::noop())
        .expect("bind")
}

#[test]
fn concurrent_requests_match_the_in_process_pipeline_byte_for_byte() {
    let server = spawn_daemon();
    let addr = server.addr().to_string();

    // The three request shapes of the loadgen mix, precomputed in-process.
    let requests = [
        Request::Profile { bench: "wc".into(), scale: 1, depth: 0 },
        Request::Compile { bench: "wc".into(), scale: 1, scheme: "P4".into(), profile: None },
        Request::RunCell { bench: "wc".into(), scale: 1, scheme: "M4".into(), strict: false },
    ];
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| encode_response(&pps::serve::execute(r, &Obs::noop())))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..6 {
            let addr = &addr;
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                let mut client =
                    Client::connect(addr, Some(Duration::from_secs(120))).expect("connect");
                for i in 0..3 {
                    let slot = (t + i) % requests.len();
                    let mut resp = client
                        .call(&Envelope::new(requests[slot].clone()))
                        .expect("request");
                    // The daemon may answer Busy under load; retry.
                    let mut tries = 0;
                    while matches!(resp, Response::Busy) {
                        tries += 1;
                        assert!(tries < 100, "persistent Busy");
                        std::thread::sleep(Duration::from_millis(10));
                        resp = client
                            .call(&Envelope::new(requests[slot].clone()))
                            .expect("retry");
                    }
                    assert_eq!(
                        encode_response(&resp),
                        expected[slot],
                        "thread {t} slot {slot}: daemon reply differs from in-process pipeline"
                    );
                }
            });
        }
    });

    server.shutdown();
    let stats = server.join().expect("clean drain");
    assert_eq!(stats.frame_errors, 0);
    assert!(stats.requests >= 18, "{stats:?}");
}

#[test]
fn loadgen_reports_clean_against_a_live_daemon_and_drains_it() {
    let server = spawn_daemon();
    let config = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 8,
        requests: 12,
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        probe_malformed: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config, &Obs::noop()).expect("loadgen ran");
    assert!(report.clean(), "loadgen failures: {:?}", report.failures);
    assert_eq!(report.ok, 12);
    assert_eq!(report.probes_run, 6);
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency.max >= report.latency.p50);
    pps::obs::json::parse(&report.to_json(&config)).expect("report JSON parses");

    // loadgen's --shutdown flag sent the in-band Shutdown request: the
    // daemon must drain and exit on its own, no flag flip needed.
    let stats = server.join().expect("drained after in-band Shutdown");
    assert!(stats.requests >= 12, "{stats:?}");
}

#[test]
fn in_band_shutdown_answers_then_drains() {
    let server = spawn_daemon();
    let mut client =
        Client::connect(&server.addr().to_string(), Some(Duration::from_secs(30))).unwrap();
    let resp = client.request(Request::Shutdown).expect("shutdown reply");
    assert!(matches!(resp, Response::ShuttingDown), "got {resp:?}");
    // join() returning at all is the drain: the accept loop noticed the
    // in-band request, stopped, and the scope wound down.
    server.join().expect("drained");
}
