//! Determinism of the parallel experiment engine: for any `--jobs` value,
//! the rendered tables, merged metrics, and fault-incident routing must be
//! byte-identical to a serial run.

use pps_core::GuardMode;
use pps_harness::experiments::run_experiment_jobs;
use pps_harness::{run_experiment_jobs_config, RunConfig};
use pps_obs::{Level, Obs, ObsConfig};
use pps_suite::Scale;

fn obs_metrics_only() -> Obs {
    Obs::recording(ObsConfig { level: Level::Off, trace: false, metrics: true })
}

/// Full experiment report (all tables rendered + the merged metrics JSON)
/// for one experiment at the given job count.
fn report(id: &str, jobs: usize, config: &RunConfig) -> (String, String) {
    let obs = obs_metrics_only();
    let tables = run_experiment_jobs_config(
        id,
        Scale::quick(),
        Some("wc"),
        config,
        jobs,
        &obs,
    )
    .unwrap();
    let rendered = tables
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n");
    (rendered, obs.export_metrics_json().unwrap())
}

#[test]
fn tables_and_metrics_identical_at_any_job_count() {
    for id in ["table1", "fig4", "fig7"] {
        let config = RunConfig::paper();
        let (t1, m1) = report(id, 1, &config);
        let (t8, m8) = report(id, 8, &config);
        assert_eq!(t1, t8, "{id}: tables differ between --jobs 1 and --jobs 8");
        assert_eq!(m1, m8, "{id}: merged metrics differ between --jobs 1 and --jobs 8");
        assert!(!m1.is_empty());
    }
}

#[test]
fn ablation_variants_stay_deterministic_in_parallel() {
    // `ablate` mixes repeated cells and config variants — the hardest case
    // for cell keying.
    let config = RunConfig::paper();
    let (t1, m1) = report("ablate", 1, &config);
    let (t6, m6) = report("ablate", 6, &config);
    assert_eq!(t1, t6);
    assert_eq!(m1, m6);
}

#[test]
fn fault_injected_runs_route_same_incidents_at_any_job_count() {
    let mut config = RunConfig::paper();
    config.guard.mode = GuardMode::Degrade;
    config.fault_seed = Some(0xfeed_beef);
    let run = |jobs: usize| {
        let tables = run_experiment_jobs_config(
            "fig4",
            Scale::quick(),
            Some("wc"),
            &config,
            jobs,
            &Obs::noop(),
        )
        .unwrap();
        tables
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = run(1);
    let parallel = run(8);
    // Injected faults must degrade at least one procedure, and the
    // incident table (appended when incidents exist) must match exactly —
    // same procedures, same passes, same fallback decisions.
    assert!(
        serial.contains("incident") || serial.contains("Incident"),
        "fault seed produced no incidents:\n{serial}"
    );
    assert_eq!(serial, parallel, "incident routing depends on job count");
}

#[test]
fn engine_handles_ctx_free_experiments() {
    // tracecache/predict run without a RunCtx; the engine must pass them
    // through unchanged at any job count.
    for id in ["tracecache", "predict"] {
        let run = |jobs: usize| {
            run_experiment_jobs(id, Scale::quick(), Some("wc"), GuardMode::Degrade, jobs, &Obs::noop())
                .unwrap()
                .iter()
                .map(|t| t.render())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(run(1), run(4), "{id}");
    }
}
