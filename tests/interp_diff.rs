//! Differential lockdown of the fast execution engine (ISSUE: flat
//! pre-decoded interpreter).
//!
//! The tree-walking [`Interp`] is the semantic ground truth; the fast
//! engine ([`Exec`] with [`Engine::Fast`]) re-implements it over a flat
//! pre-decoded stream with direct-threaded dispatch. This suite proves
//! exact observable equality over hundreds of generated multi-procedure
//! programs and their fault-injected (often structurally invalid)
//! variants:
//!
//! - complete runs: `ExecResult` (output, return value, dynamic counts,
//!   final memory) and the full trace-sink event stream;
//! - bounded runs: identical truncation prefixes at a ladder of budgets,
//!   down to `max_instrs == 0`;
//! - errors: the same `ExecError` on faulting programs, and when a broken
//!   program panics the interpreter, both engines panic;
//! - simulation: byte-identical cycle/I-cache/transition/Fig-7 tables when
//!   each engine drives the cycle simulator.

use pps::compact::{compact_program, singleton_partition, CompactConfig};
use pps::ir::interp::{BoundedRun, ExecConfig, ExecError, ExecResult, Interp};
use pps::ir::trace::VecSink;
use pps::ir::{current_engine, Engine, Exec, FaultInjector, ProcId, Program};
use pps::machine::MachineConfig;
use pps::sim::{CycleSim, Layout, SimOutcome};
use pps::testgen::{gen_program, GenConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEEDS: u64 = 200;
/// Generated programs terminate well under this (testgen budgets 50k).
const BUDGETS: &[u64] = &[0, 1, 2, 3, 5, 13, 100, 1_000, 50_000];

/// Shape variety: cycle the generator config with the seed.
fn config_for(seed: u64) -> GenConfig {
    let base = GenConfig::default();
    GenConfig {
        max_depth: 1 + (seed % 3) as u32,
        max_stmts: 2 + (seed % 4) as u32,
        max_procs: (seed % 4) as u32,
        ..base
    }
}

fn reference_traced(p: &Program, config: ExecConfig) -> (Result<ExecResult, ExecError>, VecSink) {
    let mut sink = VecSink::new();
    let r = Interp::new(p, config).run_traced(&[], &mut sink);
    (r, sink)
}

fn fast_traced(p: &Program, config: ExecConfig) -> (Result<ExecResult, ExecError>, VecSink) {
    let mut sink = VecSink::new();
    let r = Exec::with_engine(p, config, Engine::Fast).run_traced(&[], &mut sink);
    (r, sink)
}

#[test]
fn fast_engine_is_the_default() {
    // The whole pipeline (sim, guard, serve, harness) goes through
    // `Exec::new`; this pins that production default to the fast engine
    // unless PPS_ENGINE overrides it. CI runs without the override.
    if std::env::var_os("PPS_ENGINE").is_none() {
        assert_eq!(current_engine(), Engine::Fast);
    }
}

#[test]
fn engines_agree_on_results_and_traces() {
    for seed in 0..SEEDS {
        let p = gen_program(seed, config_for(seed));
        let config = ExecConfig::default();
        let (rr, rs) = reference_traced(&p, config);
        let (fr, fs) = fast_traced(&p, config);
        assert_eq!(fr, rr, "seed {seed}: ExecResult diverges");
        assert_eq!(fs, rs, "seed {seed}: trace event stream diverges");
        assert!(rr.is_ok(), "seed {seed}: generated programs never fault");
    }
}

#[test]
fn engines_agree_on_bounded_prefixes() {
    for seed in 0..SEEDS / 2 {
        let p = gen_program(seed, config_for(seed));
        for &budget in BUDGETS {
            let config = ExecConfig { max_instrs: budget, ..ExecConfig::default() };
            let rr = Interp::new(&p, config).run_bounded(&[]);
            let fr = Exec::with_engine(&p, config, Engine::Fast).run_bounded(&[]);
            assert_eq!(fr, rr, "seed {seed} budget {budget}: bounded prefix diverges");
        }
    }
}

/// What a (possibly invalid) program observably does under one engine: a
/// bounded run, an error, or a panic.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Run(Box<BoundedRun>),
    Error(ExecError),
    Panicked,
}

fn outcome(run: impl FnOnce() -> Result<BoundedRun, ExecError> + std::panic::UnwindSafe) -> Outcome {
    match catch_unwind(run) {
        Ok(Ok(b)) => Outcome::Run(Box::new(b)),
        Ok(Err(e)) => Outcome::Error(e),
        Err(_) => Outcome::Panicked,
    }
}

#[test]
fn engines_agree_on_fault_injected_programs() {
    // Corrupted programs — including ones the verifier rejects — must
    // behave identically: same results, same errors, and panics (from
    // structurally broken bodies) on both engines or neither. The decoder
    // is total, so even an unresolvable branch target decodes; it faults
    // only when executed, like the reference engine.
    let mut injected = 0u64;
    for seed in 0..SEEDS {
        let base = gen_program(seed, config_for(seed));
        let mut injector = FaultInjector::new(seed.wrapping_mul(0x9e37_79b9));
        for pi in 0..base.procs.len() {
            let mut corrupted = base.clone();
            if injector.inject(&mut corrupted, ProcId::new(pi as u32)).is_none() {
                continue;
            }
            injected += 1;
            let config = ExecConfig { max_instrs: 50_000, ..ExecConfig::default() };
            let r = outcome(AssertUnwindSafe(|| {
                Interp::new(&corrupted, config).run_bounded(&[])
            }));
            let f = outcome(AssertUnwindSafe(|| {
                Exec::with_engine(&corrupted, config, Engine::Fast).run_bounded(&[])
            }));
            assert_eq!(f, r, "seed {seed} proc {pi}: corrupted-program outcome diverges");
        }
    }
    assert!(injected >= SEEDS / 2, "fault injection exercised enough programs");
}

/// Everything a simulated run reports, in comparable form.
#[derive(Debug, PartialEq)]
struct SimTable {
    exec: ExecResult,
    cycles: u64,
    cycles_with_icache: u64,
    icache: Option<pps::sim::CacheStats>,
    sb_stats: pps::sim::SbDynStats,
    transitions: Vec<ProcTransitions>,
}

/// Per-proc transition snapshot: `(proc, edges, per-sb entries, activations)`.
type ProcTransitions = (u32, Vec<((u32, u32), u64)>, Vec<u64>, u64);

impl SimTable {
    fn capture(p: &Program, out: SimOutcome) -> SimTable {
        let transitions = (0..p.procs.len() as u32)
            .map(|pi| {
                let pid = ProcId::new(pi);
                let edges: Vec<_> = out.transitions.iter_proc(pid).collect();
                let n_sb = edges
                    .iter()
                    .flat_map(|((a, b), _)| [*a, *b])
                    .max()
                    .map_or(0, |m| m + 1);
                let entries = (0..n_sb).map(|sb| out.transitions.entries(pid, sb)).collect();
                (pi, edges, entries, out.transitions.activations(pid))
            })
            .collect();
        SimTable {
            cycles: out.cycles,
            cycles_with_icache: out.cycles_with_icache(),
            icache: out.icache,
            sb_stats: out.sb_stats,
            exec: out.exec,
            transitions,
        }
    }
}

fn simulate_with(
    engine: Engine,
    p: &Program,
    compacted: &pps::compact::CompactedProgram,
    machine: &MachineConfig,
    layout: Option<&Layout>,
) -> SimTable {
    let mut sim = CycleSim::new(compacted, machine, layout);
    let exec = Exec::with_engine(p, ExecConfig::default(), engine)
        .run_traced(&[], &mut sim)
        .expect("generated programs simulate cleanly");
    SimTable::capture(p, sim.finish(exec))
}

#[test]
fn engines_produce_identical_sim_tables() {
    let machine = MachineConfig::paper();
    for seed in 0..SEEDS / 4 {
        let mut p = gen_program(seed, config_for(seed));
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());

        // Ideal I-cache pass; its transitions feed the layout.
        let ref_ideal = simulate_with(Engine::Reference, &p, &compacted, &machine, None);
        let fast_ideal = simulate_with(Engine::Fast, &p, &compacted, &machine, None);
        assert_eq!(fast_ideal, ref_ideal, "seed {seed}: ideal-cache sim table diverges");

        // I-cache pass over a real layout.
        let mut sim = CycleSim::new(&compacted, &machine, None);
        let exec = Exec::with_engine(&p, ExecConfig::default(), Engine::Reference)
            .run_traced(&[], &mut sim)
            .unwrap();
        let train = sim.finish(exec);
        let layout = Layout::build(&p, &compacted, &train.transitions, &machine);
        let ref_ic = simulate_with(Engine::Reference, &p, &compacted, &machine, Some(&layout));
        let fast_ic = simulate_with(Engine::Fast, &p, &compacted, &machine, Some(&layout));
        assert_eq!(fast_ic, ref_ic, "seed {seed}: icache sim table diverges");
        assert!(fast_ic.icache.is_some());
    }
}
