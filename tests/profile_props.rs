//! Property tests for the profilers over random programs: the general
//! path profile must agree with a brute-force recount of the raw trace,
//! and its derived point statistics must equal the edge profiler's.

use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::{BlockId, ProcId, VecSink};
use pps::profile::{EdgeProfiler, ForwardPathProfiler, PathProfiler};
use pps::testgen::{gen_program, GenConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// Recomputes, per procedure, every maximal window of the block trace and
/// counts all suffix occurrences — the specification the trie implements.
fn brute_force_freqs(
    program: &pps::ir::Program,
    events: &[pps::ir::BlockEvent],
    depth: usize,
) -> Vec<HashMap<Vec<BlockId>, u64>> {
    use pps::ir::BlockEvent;
    let mut per_proc: Vec<HashMap<Vec<BlockId>, u64>> =
        program.procs.iter().map(|_| HashMap::new()).collect();
    // Reconstruct per-activation block sequences.
    let mut stacks: Vec<Vec<Vec<BlockId>>> = program.procs.iter().map(|_| Vec::new()).collect();
    let mut order: Vec<(ProcId, Vec<BlockId>)> = Vec::new();
    for e in events {
        match e {
            BlockEvent::Enter(p) => stacks[p.index()].push(Vec::new()),
            BlockEvent::Exit(p) => {
                let seq = stacks[p.index()].pop().expect("activation");
                order.push((*p, seq));
            }
            BlockEvent::Block(p, b) => {
                stacks[p.index()].last_mut().expect("activation").push(*b)
            }
        }
    }
    for (pid, seq) in order {
        let proc = program.proc(pid);
        let is_branch =
            |b: BlockId| proc.block(b).term.is_counted_branch();
        for end in 0..seq.len() {
            let mut start = end;
            let mut branches = 0;
            while start > 0 {
                let b = seq[start - 1];
                if branches + usize::from(is_branch(b)) > depth {
                    break;
                }
                branches += usize::from(is_branch(b));
                start -= 1;
            }
            // The maximal window ending at `end` contributes one count to
            // every suffix of itself.
            for s in start..=end {
                *per_proc[pid.index()]
                    .entry(seq[s..=end].to_vec())
                    .or_insert(0) += 1;
            }
        }
    }
    per_proc
}

fn check_seed(seed: u64, depth: usize) {
    let program = gen_program(seed, GenConfig { max_depth: 2, ..GenConfig::default() });
    let interp = Interp::new(&program, ExecConfig::default());

    let mut sink = VecSink::new();
    interp.run_traced(&[], &mut sink).unwrap();
    // Keep brute force tractable.
    if sink.events.len() > 8_000 {
        return;
    }

    let mut pp = PathProfiler::new(&program, depth);
    interp.run_traced(&[], &mut pp).unwrap();
    let path = pp.finish();

    let expected = brute_force_freqs(&program, &sink.events, depth);
    for (pi, table) in expected.iter().enumerate() {
        let pid = ProcId::new(pi as u32);
        for (seq, &count) in table {
            assert_eq!(
                path.freq(pid, seq),
                count,
                "seed {seed} depth {depth} {pid} seq {seq:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn path_profile_matches_brute_force(seed in 0u64..100_000, depth in 0usize..6) {
        check_seed(seed, depth);
    }

    #[test]
    fn derived_point_stats_match_edge_profiler(seed in 0u64..100_000) {
        let program = gen_program(seed, GenConfig::default());
        let interp = Interp::new(&program, ExecConfig::default());
        let mut ep = EdgeProfiler::new(&program);
        interp.run_traced(&[], &mut ep).unwrap();
        let edge = ep.finish();
        let mut pp = PathProfiler::new(&program, 15);
        interp.run_traced(&[], &mut pp).unwrap();
        let path = pp.finish();
        for (pid, proc) in program.iter_procs() {
            for (b, _) in proc.iter_blocks() {
                prop_assert_eq!(path.block_freq(pid, b), edge.block_freq(pid, b));
                for (s, f) in edge.out_edges(pid, b) {
                    prop_assert_eq!(path.edge_freq(pid, b, s), f);
                }
            }
        }
    }

    #[test]
    fn forward_paths_partition_the_trace(seed in 0u64..100_000) {
        // Every block event belongs to exactly one forward path, so the
        // length-weighted path counts must sum to the block-event count.
        let program = gen_program(seed, GenConfig::default());
        let interp = Interp::new(&program, ExecConfig::default());
        let mut fp = ForwardPathProfiler::new(&program);
        let result = interp.run_traced(&[], &mut fp).unwrap();
        let fwd = fp.finish();
        let total: u64 = program
            .proc_ids()
            .map(|pid| {
                fwd.iter_paths(pid)
                    .map(|(p, c)| p.len() as u64 * c)
                    .sum::<u64>()
            })
            .sum();
        prop_assert_eq!(total, result.counts.blocks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn serialized_profiles_round_trip(seed in 0u64..100_000) {
        use pps::profile::serialize::{edge_from_text, edge_to_text, path_from_text, path_to_text};
        let program = gen_program(seed, GenConfig::default());
        let interp = Interp::new(&program, ExecConfig::default());
        let mut ep = EdgeProfiler::new(&program);
        interp.run_traced(&[], &mut ep).unwrap();
        let edge = ep.finish();
        let mut pp = PathProfiler::new(&program, 15);
        interp.run_traced(&[], &mut pp).unwrap();
        let path = pp.finish();

        let edge2 = edge_from_text(&edge_to_text(&edge)).unwrap();
        prop_assert_eq!(edge_to_text(&edge2), edge_to_text(&edge));
        let path2 = path_from_text(&path_to_text(&path)).unwrap();
        prop_assert_eq!(path_to_text(&path2), path_to_text(&path));

        // Formation from the reloaded profiles is identical to formation
        // from the originals.
        use pps::core::{form_program, FormConfig, Scheme};
        let mut p1 = program.clone();
        let mut p2 = program.clone();
        let f1 = form_program(&mut p1, &edge, Some(&path), Scheme::P4, &FormConfig::default())
            .unwrap();
        let f2 = form_program(&mut p2, &edge2, Some(&path2), Scheme::P4, &FormConfig::default())
            .unwrap();
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(f1.partition, f2.partition);
    }
}

// ---------------------------------------------------------------------------
// Serialization round-trips (`pps::profile::serialize`): the text formats
// must preserve every count — across procedures and out to the paper's
// depth-15 windows — and re-serialize to the identical canonical text.

use pps::profile::serialize::{edge_from_text, edge_to_text, path_from_text, path_to_text};
use pps::profile::{EdgeProfile, PathProfile};
use pps::suite::{benchmark_by_name, Scale};

/// Profiles one program with both profilers over a single traced run.
fn collect_both(
    program: &pps::ir::Program,
    args: &[i64],
    depth: usize,
) -> (EdgeProfile, PathProfile) {
    let mut tee = pps::ir::trace::TeeSink::new(
        EdgeProfiler::new(program),
        PathProfiler::new(program, depth),
    );
    Interp::new(program, ExecConfig::default())
        .run_traced(args, &mut tee)
        .unwrap();
    (tee.a.finish(), tee.b.finish())
}

/// Asserts both profiles survive text round-trips exactly, window by
/// window, for every procedure.
fn assert_round_trip(program: &pps::ir::Program, edge: &EdgeProfile, path: &PathProfile) {
    let edge_text = edge_to_text(edge);
    let edge_back = edge_from_text(&edge_text).unwrap();
    assert_eq!(edge_to_text(&edge_back), edge_text, "edge canonical fixpoint");

    let path_text = path_to_text(path);
    let path_back = path_from_text(&path_text).unwrap();
    assert_eq!(path_back.depth(), path.depth());
    assert_eq!(path_to_text(&path_back), path_text, "path canonical fixpoint");

    for (pid, proc) in program.iter_procs() {
        for (b, _) in proc.iter_blocks() {
            assert_eq!(edge_back.block_freq(pid, b), edge.block_freq(pid, b));
            for (s, f) in edge.out_edges(pid, b) {
                assert_eq!(edge_back.edge_freq(pid, b, s), f);
            }
        }
        for (window, freq) in path.iter_maximal_windows(pid) {
            assert_eq!(
                path_back.freq(pid, &window),
                freq,
                "{pid} window {window:?} lost its count"
            );
        }
    }
}

/// Counted branches among a window's first `len-1` blocks — the quantity
/// the depth limit bounds.
fn window_branches(proc: &pps::ir::Proc, window: &[BlockId]) -> usize {
    window
        .iter()
        .take(window.len().saturating_sub(1))
        .filter(|&&b| proc.block(b).term.is_counted_branch())
        .count()
}

#[test]
fn serialized_profiles_round_trip_on_a_multi_proc_benchmark_at_depth_15() {
    let bench = benchmark_by_name("gcc", Scale::quick()).unwrap();
    assert!(
        bench.program.procs.len() > 1,
        "need a multi-procedure program, got {}",
        bench.program.procs.len()
    );
    let (edge, path) = collect_both(&bench.program, &bench.train_args, 15);
    assert_round_trip(&bench.program, &edge, &path);

    // The run must actually exercise the depth limit: somewhere a maximal
    // window saturates at exactly 15 counted branches, so the round trip
    // above covered full-depth windows, not just short ones.
    let saturated = bench.program.proc_ids().any(|pid| {
        let proc = bench.program.proc(pid);
        path.iter_maximal_windows(pid)
            .iter()
            .any(|(w, _)| window_branches(proc, w) == 15)
    });
    assert!(saturated, "no maximal window reached the depth-15 limit");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn serialized_profiles_round_trip_on_random_multi_proc_programs(seed in 0u64..100_000) {
        let program = gen_program(seed, GenConfig::default());
        let (edge, path) = collect_both(&program, &[], 15);
        assert_round_trip(&program, &edge, &path);
    }
}

// ---------------------------------------------------------------------------
// Merge algebra (`pps::profile::merge`): the continuous-PGO aggregator
// folds profiles by counter addition, so the operation must be commutative
// and associative — *in serialized form*, since the daemon's aggregates are
// compared and shipped as canonical text. Depth 15 over random multi-proc
// programs, like the round-trip suite above.

use pps::profile::{merge_edges, merge_paths};

/// A path profile over a *different support*: keeps only the windows whose
/// enumeration index satisfies `keep`, with counts rescaled and salted.
/// Merging profiles with partial window overlap is exactly what the
/// daemon's aggregate does when the workload shifts.
fn path_variant(path: &PathProfile, keep: impl Fn(usize) -> bool, scale: u64) -> PathProfile {
    let per_proc = (0..path.num_procs())
        .map(|pi| {
            path.iter_maximal_windows(ProcId::new(pi as u32))
                .into_iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .map(|(i, (w, c))| (w, c * scale + i as u64 + 1))
                .collect()
        })
        .collect();
    PathProfile::from_windows(path.depth(), per_proc)
}

/// Three genuinely different profile pairs of the same program: the paths
/// cover overlapping-but-distinct window subsets with distinct weights,
/// the edges are distinct multiples of the traced run.
fn three_profiles(seed: u64) -> [(EdgeProfile, PathProfile); 3] {
    let program = gen_program(seed, GenConfig::default());
    let (e1, p1) = collect_both(&program, &[], 15);
    let e2 = merge_edges(&e1, &e1).unwrap();
    let e3 = merge_edges(&e2, &e1).unwrap();
    let p2 = path_variant(&p1, |i| i % 2 == 0, 3);
    let p3 = path_variant(&p1, |i| i % 3 != 0, 7);
    [(e1, p1), (e2, p2), (e3, p3)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn profile_merge_is_commutative_and_associative_in_serialized_form(
        seed in 0u64..100_000,
    ) {
        let [(ea, pa), (eb, pb), (ec, pc)] = three_profiles(seed);

        // Commutativity: a+b == b+a, byte for byte.
        prop_assert_eq!(
            edge_to_text(&merge_edges(&ea, &eb).unwrap()),
            edge_to_text(&merge_edges(&eb, &ea).unwrap())
        );
        prop_assert_eq!(
            path_to_text(&merge_paths(&pa, &pb).unwrap()),
            path_to_text(&merge_paths(&pb, &pa).unwrap())
        );

        // Associativity: (a+b)+c == a+(b+c), byte for byte — the aggregate
        // is independent of the order requests arrived in.
        let left_e = merge_edges(&merge_edges(&ea, &eb).unwrap(), &ec).unwrap();
        let right_e = merge_edges(&ea, &merge_edges(&eb, &ec).unwrap()).unwrap();
        prop_assert_eq!(edge_to_text(&left_e), edge_to_text(&right_e));
        let left_p = merge_paths(&merge_paths(&pa, &pb).unwrap(), &pc).unwrap();
        let right_p = merge_paths(&pa, &merge_paths(&pb, &pc).unwrap()).unwrap();
        prop_assert_eq!(path_to_text(&left_p), path_to_text(&right_p));
    }

    #[test]
    fn merged_profiles_answer_queries_with_summed_counts(seed in 0u64..100_000) {
        let program = gen_program(seed, GenConfig::default());
        let (edge, path) = collect_both(&program, &[], 15);
        let edge2 = merge_edges(&edge, &edge).unwrap();
        let path2 = merge_paths(&path, &path).unwrap();
        for (pid, proc) in program.iter_procs() {
            for (b, _) in proc.iter_blocks() {
                prop_assert_eq!(edge2.block_freq(pid, b), 2 * edge.block_freq(pid, b));
            }
            for (window, _) in path.iter_maximal_windows(pid) {
                prop_assert_eq!(path2.freq(pid, &window), 2 * path.freq(pid, &window));
            }
        }
        // The merge result also survives the text round trip exactly.
        assert_round_trip(&program, &edge2, &path2);
    }
}
