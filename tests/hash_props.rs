//! Property tests for canonical content hashing — the identity layer
//! under the serving stack's `ArtifactKey`. Over random multi-procedure
//! programs: structural hashes must survive text serialize → deserialize
//! and mutation-generation churn (clone, `touch()`), the memoized
//! [`AnalysisCache`] path must agree with the direct walk, any actual
//! touched mutation must change the hash, and profile hashes (depth 15)
//! must survive their own serialize round-trip.

use pps::ir::hash::{proc_hash, program_hash};
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::text::{parse_program, print_program};
use pps::ir::trace::TeeSink;
use pps::ir::AnalysisCache;
use pps::profile::serialize::{
    edge_from_text, edge_to_text, kpath_from_text, kpath_to_text, path_from_text, path_to_text,
};
use pps::profile::{
    edge_hash, kpath_hash, path_hash, profile_pair_hash, profile_triple_hash, EdgeProfiler,
    KPathProfiler, PathProfiler,
};
use pps::testgen::{gen_program, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The structural hash is a content address: parsing the printed
    /// program yields fresh generation nonces but the same body, and
    /// `touch()` churns the generation without changing the body. Neither
    /// may move the hash, and the memoized cache must agree throughout.
    #[test]
    fn program_hash_survives_round_trip_and_generation_churn(seed in 0u64..1_000_000) {
        let p = gen_program(seed, GenConfig::default());
        let h = program_hash(&p);

        // Text round-trip: same body, brand-new generations.
        let q = parse_program(&print_program(&p)).unwrap();
        prop_assert_eq!(program_hash(&q), h, "seed {}", seed);
        for (a, b) in p.procs.iter().zip(&q.procs) {
            prop_assert_eq!(proc_hash(a), proc_hash(b), "seed {}", seed);
        }

        // Generation churn: clone keeps generations, touch replaces them;
        // the hash ignores both.
        let mut r = p.clone();
        for proc in &mut r.procs {
            let before = proc.generation();
            proc.touch();
            prop_assert_ne!(proc.generation(), before, "touch must churn");
        }
        prop_assert_eq!(program_hash(&r), h, "seed {}", seed);

        // The memoized path is exact: it matches the direct walk before
        // and after churn, per procedure and for the whole program.
        let mut cache = AnalysisCache::new();
        prop_assert_eq!(cache.program_hash(&p), h);
        prop_assert_eq!(cache.program_hash(&p), h, "memo hit must not drift");
        for pid in p.proc_ids() {
            prop_assert_eq!(cache.structural_hash(&p, pid), proc_hash(p.proc(pid)));
        }
        prop_assert_eq!(cache.program_hash(&r), h, "churned program, same content");
    }

    /// Any touched mutation that changes the body must change the hash of
    /// the mutated procedure (and hence the program), while every other
    /// procedure's hash stays put — exactly the granularity the compile
    /// cache invalidates at.
    #[test]
    fn any_touched_mutation_changes_the_hash(seed in 0u64..1_000_000, kind in 0u8..3) {
        let mut p = gen_program(seed, GenConfig::default());
        let h = program_hash(&p);
        let before: Vec<u64> = p.procs.iter().map(proc_hash).collect();
        let victim = (seed as usize) % p.procs.len();

        let proc = &mut p.procs[victim];
        match kind {
            0 => {
                proc.name.push('_');
                proc.touch();
            }
            1 => {
                proc.reg_count += 1;
                proc.touch();
            }
            _ => {
                // Drop the last instruction of some non-empty block;
                // fall back to a rename when every block is bare.
                let target = proc
                    .block_ids()
                    .find(|&b| !proc.block(b).instrs.is_empty());
                match target {
                    Some(b) => {
                        proc.block_mut(b).instrs.pop();
                    }
                    None => {
                        proc.name.push('_');
                        proc.touch();
                    }
                }
            }
        }

        prop_assert_ne!(program_hash(&p), h, "seed {} kind {}", seed, kind);
        for (i, proc) in p.procs.iter().enumerate() {
            if i == victim {
                prop_assert_ne!(proc_hash(proc), before[i], "seed {} kind {}", seed, kind);
            } else {
                prop_assert_eq!(proc_hash(proc), before[i], "seed {} kind {}", seed, kind);
            }
        }
    }

    /// Profile hashes are content addresses too: serializing a trained
    /// edge/path profile to text and parsing it back must preserve both
    /// hashes and the pair hash, and the pair hash must be
    /// order-sensitive.
    #[test]
    fn profile_hashes_survive_serialize_round_trip(seed in 0u64..1_000_000) {
        let program = gen_program(seed, GenConfig::default());
        let mut tee = TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, 15));
        Interp::new(&program, ExecConfig::default())
            .run_traced(&[], &mut tee)
            .unwrap();
        let edge = tee.a.finish();
        let path = tee.b.finish();

        let edge2 = edge_from_text(&edge_to_text(&edge)).unwrap();
        let path2 = path_from_text(&path_to_text(&path)).unwrap();
        prop_assert_eq!(edge_hash(&edge2), edge_hash(&edge), "seed {}", seed);
        prop_assert_eq!(path_hash(&path2), path_hash(&path), "seed {}", seed);
        prop_assert_eq!(
            profile_pair_hash(&edge2, &path2),
            profile_pair_hash(&edge, &path),
            "seed {}", seed
        );
    }

    /// The k-path profile hash — the new ingredient the `Pk*` schemes fold
    /// into `ArtifactKey` — is a content address with the same contract:
    /// stable under canonical-text round-trip (for the triple hash too),
    /// and moved by any count mutation.
    #[test]
    fn kpath_hash_survives_round_trip_and_detects_mutation(
        seed in 0u64..1_000_000,
        k in 1u32..4,
    ) {
        let program = gen_program(seed, GenConfig::default());
        let mut tee = TeeSink::new(
            EdgeProfiler::new(&program),
            TeeSink::new(PathProfiler::new(&program, 15), KPathProfiler::new(&program, k as usize)),
        );
        Interp::new(&program, ExecConfig::default())
            .run_traced(&[], &mut tee)
            .unwrap();
        let edge = tee.a.finish();
        let path = tee.b.a.finish();
        let kprof = tee.b.b.finish();

        // Round-trip stability, for the component hash and for the triple
        // hash the serving stack keys server-trained Pk units with.
        let kprof2 = kpath_from_text(&kpath_to_text(&kprof)).unwrap();
        prop_assert_eq!(kpath_hash(&kprof2), kpath_hash(&kprof), "seed {}", seed);
        prop_assert_eq!(
            profile_triple_hash(&edge, &path, &kprof2),
            profile_triple_hash(&edge, &path, &kprof),
            "seed {}", seed
        );

        // The triple hash must not degenerate to the pair hash: the k-path
        // component has to move the key, or two schemes trained on
        // different k-path data would alias in the artifact cache.
        prop_assert_ne!(
            profile_triple_hash(&edge, &path, &kprof),
            profile_pair_hash(&edge, &path),
            "seed {}", seed
        );

        // Mutation sensitivity: bump one recorded path's count via the
        // canonical text (lines read `path <count> <b0> <b1> ...`). A
        // profile with no completed path has nothing to mutate; skip it.
        let text = kpath_to_text(&kprof);
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        if let Some(i) = lines.iter().position(|l| l.starts_with("path ")) {
            let rest = lines[i].strip_prefix("path ").unwrap();
            let (count, tail) = rest.split_once(' ').unwrap();
            let bumped = count.parse::<u64>().unwrap() + 1;
            lines[i] = format!("path {bumped} {tail}");
            let kprof3 = kpath_from_text(&(lines.join("\n") + "\n")).unwrap();
            prop_assert_ne!(kpath_hash(&kprof3), kpath_hash(&kprof), "seed {}", seed);
            prop_assert_ne!(
                profile_triple_hash(&edge, &path, &kprof3),
                profile_triple_hash(&edge, &path, &kprof),
                "seed {}", seed
            );
        }
    }
}

/// Distinct programs get distinct hashes in practice: across a spread of
/// generator seeds, no two structurally different programs may collide
/// (deterministic generator, so this is a fixed regression check rather
/// than a probabilistic one).
#[test]
fn distinct_programs_hash_distinctly() {
    use std::collections::HashMap;
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for seed in 0..200u64 {
        let p = gen_program(seed, GenConfig::default());
        let h = program_hash(&p);
        if let Some(&prior) = seen.get(&h) {
            let q = gen_program(prior, GenConfig::default());
            assert_eq!(p, q, "seeds {prior} and {seed} collide on {h:#x} yet differ");
        }
        seen.entry(h).or_insert(seed);
    }
    assert!(seen.len() > 150, "generator should produce mostly distinct programs");
}
