//! Property tests for compaction: every schedule produced over random
//! programs (any scheme, any compactor configuration) must satisfy the
//! dependence, resource and ordering invariants checked by
//! `pps_compact::sched::check_schedule`, and the Figure 7 accounting must
//! be internally consistent with the cycle charges.

use pps::compact::{compact_program, singleton_partition, CompactConfig};
use pps::core::{form_program, FormConfig, Scheme};
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::trace::TeeSink;
use pps::machine::MachineConfig;
use pps::profile::{EdgeProfiler, PathProfiler};
use pps::sim::simulate;
use pps::testgen::{gen_program, GenConfig};
use proptest::prelude::*;

// `compact_program` runs `check_schedule` on every superblock when
// `validate` is set (the default); these tests lean on that and assert the
// higher-level accounting.

fn form_and_check(seed: u64, scheme: Scheme, machine: MachineConfig) {
    let mut program = gen_program(seed, GenConfig::default());
    let mut tee = TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, 15));
    Interp::new(&program, ExecConfig::default())
        .run_traced(&[], &mut tee)
        .unwrap();
    let formed = form_program(
        &mut program,
        &tee.a.finish(),
        Some(&tee.b.finish()),
        scheme,
        &FormConfig::default(),
    )
    .unwrap();
    let cc = CompactConfig { machine, validate: true, ..Default::default() };
    let compacted = compact_program(&mut program, &formed.partition, &cc);

    // Schedule-level invariants beyond the checker: exits cost at least 1
    // cycle, completion costs the whole schedule, fetch counts are
    // monotone in exit position and bounded by the item count.
    for cp in &compacted.procs {
        for sb in &cp.superblocks {
            let s = &sb.schedule;
            let mut prev_exit: Option<u32> = None;
            for (pos, ec) in s.exit_cycles.iter().enumerate() {
                let Some(ec) = ec else { continue };
                assert!(*ec < s.n_cycles.max(1));
                if let Some(p) = prev_exit {
                    assert!(*ec > p, "exits in order");
                }
                prev_exit = Some(*ec);
                let fetch = s.fetch_counts[pos];
                assert!(fetch >= 1 && fetch <= s.n_items);
            }
        }
    }

    // Cycle accounting: simulated cycles are at least the dynamic
    // control-transfer count (every superblock exit costs >= 1) and the
    // run is reproducible.
    let out = simulate(&program, &compacted, &machine, None, &[]).unwrap();
    assert!(out.cycles >= out.sb_stats.traversals);
    let out2 = simulate(&program, &compacted, &machine, None, &[]).unwrap();
    assert_eq!(out.cycles, out2.cycles, "deterministic timing");
    assert_eq!(
        out.sb_stats.blocks_executed, out.exec.counts.blocks,
        "every executed block is attributed to exactly one traversal"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn schedules_valid_under_p4(seed in 0u64..1_000_000) {
        form_and_check(seed, Scheme::P4, MachineConfig::paper());
    }

    #[test]
    fn schedules_valid_under_m4(seed in 0u64..1_000_000) {
        form_and_check(seed, Scheme::M4, MachineConfig::paper());
    }

    #[test]
    fn schedules_valid_with_realistic_latencies(seed in 0u64..1_000_000) {
        form_and_check(seed, Scheme::P4, MachineConfig::realistic());
    }

    #[test]
    fn narrow_machine_schedules_are_longer(seed in 0u64..1_000_000) {
        // Ablation sanity: a 2-wide machine can never beat the 8-wide one.
        let mut p8 = gen_program(seed, GenConfig::default());
        let mut p2 = p8.clone();
        let part8 = singleton_partition(&p8);
        let part2 = part8.clone();
        let wide = MachineConfig::paper();
        let narrow = MachineConfig { issue_width: 2, ..MachineConfig::paper() };
        let c8 = compact_program(&mut p8, &part8, &CompactConfig { machine: wide, ..Default::default() });
        let c2 = compact_program(&mut p2, &part2, &CompactConfig { machine: narrow, ..Default::default() });
        let o8 = simulate(&p8, &c8, &wide, None, &[]).unwrap();
        let o2 = simulate(&p2, &c2, &narrow, None, &[]).unwrap();
        prop_assert!(o2.cycles >= o8.cycles);
    }
}
