//! Golden-table regression lockdown (ISSUE: flat pre-decoded interpreter).
//!
//! The committed snapshots under `tests/golden/` pin the harness's
//! Table 1 and Figure 4 output at small scale **byte-for-byte**. Every
//! downstream equality check — the parallel experiment engine, the serve
//! loadgen byte-verification, the PGO hot-swap verifier — assumes the
//! pipeline is deterministic; this test catches any refactor (engine
//! swaps, counter reorganizations, layout changes) that silently perturbs
//! the numbers or even the formatting.
//!
//! The tables must also be identical under the reference engine: the
//! golden files double as a cross-engine end-to-end check.
//!
//! To regenerate after an *intentional* output change:
//! `BLESS=1 cargo test --test golden_tables`.

use pps::core::GuardMode;
use pps::harness::experiments::run_experiment;
use pps::harness::report::Table;
use pps::ir::{with_engine, Engine};
use pps::suite::Scale;
use std::path::Path;

const SCALE: Scale = Scale(1);

fn render_experiment(id: &str) -> String {
    let tables: Vec<Table> =
        run_experiment(id, SCALE, None, GuardMode::Strict).expect("experiment runs clean");
    let mut out = String::new();
    for t in &tables {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

fn check_golden(id: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}_scale1.txt"));
    let got = render_experiment(id);

    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS=1 cargo test --test golden_tables",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "{id}: harness output changed byte-wise vs {}; if intentional, re-bless",
        path.display()
    );

    // Same bytes under the reference engine: the golden file pins the
    // cross-engine contract end-to-end, not just the fast engine's output.
    let reference = with_engine(Engine::Reference, || render_experiment(id));
    assert_eq!(
        reference, want,
        "{id}: reference engine disagrees with the golden table"
    );
}

#[test]
fn table1_output_is_byte_stable() {
    check_golden("table1");
}

#[test]
fn fig4_output_is_byte_stable() {
    check_golden("fig4");
}
