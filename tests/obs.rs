//! Integration tests of the observability layer over the real pipeline:
//! the no-op sink records nothing, and a recorded `run_scheme` produces a
//! parseable Chrome trace and a metrics document with the expected series.

use pps_core::{
    guarded_form_and_compact_hooked_obs, FormConfig, GuardConfig, GuardMode, Scheme,
};
use pps_compact::CompactConfig;
use pps_harness::{run_scheme_obs, RunConfig};
use pps_ir::fault::FaultInjector;
use pps_ir::interp::{ExecConfig, Interp};
use pps_ir::trace::TeeSink;
use pps_obs::{json, Level, Obs, ObsConfig};
use pps_profile::{EdgeProfiler, PathProfiler};
use pps_suite::{benchmark_by_name, Scale};

#[test]
fn noop_sink_records_nothing_and_exports_nothing() {
    let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
    let obs = Obs::noop();
    let r = run_scheme_obs(&bench, Scheme::P4, &RunConfig::paper(), &obs).unwrap();
    assert!(r.cycles > 0, "the run itself is unaffected");
    assert!(!obs.is_recording());
    assert_eq!(obs.event_count(), 0);
    assert_eq!(obs.counter_total("sim.cycles"), 0);
    assert!(obs.export_trace_json().is_none());
    assert!(obs.export_metrics_json().is_none());
}

#[test]
fn recorded_run_scheme_produces_parseable_trace_and_metrics() {
    let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
    let obs = Obs::recording(ObsConfig { level: Level::Off, trace: true, metrics: true });
    let root = obs.span("pps-harness");
    let r = run_scheme_obs(&bench, Scheme::P4, &RunConfig::paper(), &obs).unwrap();
    drop(root);
    assert!(r.guard.clean(), "clean run expected: {:?}", r.guard);

    // --- Trace: valid Chrome trace-event JSON with the pipeline's spans.
    let trace = obs.export_trace_json().expect("tracing enabled");
    let doc = json::parse(&trace).expect("trace parses");
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
    }
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    for expected in [
        "pps-harness", "run-scheme", "profile", "schedule-proc", "form", "select", "tail_dup",
        "fixup", "compact", "guard-verify", "layout", "simulate",
    ] {
        assert!(span_names.contains(&expected), "missing span `{expected}` in {span_names:?}");
    }
    // Decision events from formation and the compactor rode along.
    let decisions: Vec<&str> = events
        .iter()
        .filter(|e| e.get("cat").and_then(|v| v.as_str()) == Some("decision"))
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(decisions.contains(&"form.trace_selected"), "{decisions:?}");
    assert!(decisions.contains(&"compact.schedule"), "{decisions:?}");

    // Nesting is by time interval: every `profile` span must lie inside
    // some `run-scheme` span on the same tid.
    let interval = |e: &json::Json| {
        let ts = e.get("ts").and_then(|v| v.as_num()).unwrap();
        let dur = e.get("dur").and_then(|v| v.as_num()).unwrap_or(0.0);
        let tid = e.get("tid").and_then(|v| v.as_num()).unwrap();
        (ts, ts + dur, tid)
    };
    let spans_named = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("X")
                    && e.get("name").and_then(|v| v.as_str()) == Some(name)
            })
            .map(interval)
            .collect::<Vec<_>>()
    };
    let runs = spans_named("run-scheme");
    for (s, e, tid) in spans_named("profile") {
        assert!(
            runs.iter().any(|&(rs, re, rtid)| rtid == tid && rs <= s && e <= re),
            "profile span [{s}, {e}] not nested in any run-scheme span {runs:?}"
        );
    }

    // --- Metrics: stable schema with the expected series.
    let metrics = obs.export_metrics_json().expect("metrics enabled");
    let doc = json::parse(&metrics).expect("metrics parse");
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("pps-metrics"));
    assert_eq!(doc.get("version").and_then(|v| v.as_num()), Some(1.0));
    let counters = doc.get("counters").and_then(|v| v.as_arr()).expect("counters array");
    let counter_names: Vec<&str> = counters
        .iter()
        .filter_map(|c| c.get("name").and_then(|v| v.as_str()))
        .collect();
    for expected in [
        "form.superblocks", "form.traces_selected", "profile.edge.dyn_edges",
        "profile.path.distinct_paths", "compact.superblocks", "sim.cycles",
        "sim.icache.accesses",
    ] {
        assert!(counter_names.contains(&expected), "missing counter `{expected}`");
    }
    let histograms = doc.get("histograms").and_then(|v| v.as_arr()).expect("histograms array");
    assert!(
        histograms
            .iter()
            .any(|h| h.get("name").and_then(|v| v.as_str()) == Some("compact.slot_occupancy")),
        "missing compact.slot_occupancy histogram"
    );
    // Counter values line up with the run's own numbers.
    assert_eq!(obs.counter_total("form.superblocks"), r.form_stats.superblocks);
    assert!(obs.counter_total("sim.cycles") >= r.cycles, "layout + test runs both recorded");
}

#[test]
fn trace_disabled_still_collects_metrics() {
    let bench = benchmark_by_name("alt", Scale::quick()).unwrap();
    let obs = Obs::recording(ObsConfig { level: Level::Off, trace: false, metrics: true });
    run_scheme_obs(&bench, Scheme::M4, &RunConfig::paper(), &obs).unwrap();
    assert_eq!(obs.event_count(), 0, "no trace events buffered");
    assert!(obs.export_trace_json().is_none());
    assert!(obs.counter_total("sim.cycles") > 0);
}

#[test]
fn injected_fault_surfaces_as_incident_metric_and_event() {
    let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
    let mut program = bench.program.clone();
    let mut tee = TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, 15));
    Interp::new(&program, ExecConfig::default())
        .run_traced(&bench.train_args, &mut tee)
        .unwrap();
    let (edge, path) = (tee.a.finish(), tee.b.finish());

    let obs = Obs::recording(ObsConfig { level: Level::Off, trace: true, metrics: true });
    let guard = GuardConfig {
        mode: GuardMode::Degrade,
        oracle_inputs: vec![bench.train_args.clone()],
        ..GuardConfig::default()
    };
    let inputs = vec![bench.train_args.clone()];
    let mut injector = FaultInjector::new(0xFA11);
    let mut injected = 0usize;
    let result = guarded_form_and_compact_hooked_obs(
        &mut program,
        &edge,
        Some(&path),
        Scheme::P4,
        &FormConfig::default(),
        &CompactConfig::default(),
        &guard,
        &obs,
        &mut |prog, pid| {
            if injector.inject_effective(prog, pid, &inputs, 500_000, 32).is_some() {
                injected += 1;
            }
        },
    )
    .unwrap();
    assert!(injected > 0, "injector found no effective fault");
    assert_eq!(result.report.incidents.len(), injected);

    // Satellite 2: every incident lands in the metrics registry and as an
    // instant trace event.
    assert_eq!(obs.counter_total("guard.incidents"), injected as u64);
    assert_eq!(obs.counter_total("guard.degraded_procs"), injected as u64);
    let trace = obs.export_trace_json().unwrap();
    let doc = json::parse(&trace).unwrap();
    let incident_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .unwrap()
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|v| v.as_str()) == Some("guard")
                && e.get("name").and_then(|v| v.as_str()) == Some("incident")
        })
        .count();
    assert_eq!(incident_events, injected);
}
