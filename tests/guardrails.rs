//! The guardrail property (ISSUE: fault-tolerant pipeline): drive hundreds
//! of generated programs through the *guarded* pipeline with a seeded
//! fault injector emulating a buggy pass between compaction and
//! verification, and prove the recovery boundary holds:
//!
//! - the pipeline never panics (panics inside formation/compaction are
//!   caught and converted to incidents);
//! - **every** injected effective fault is caught by the structural
//!   verifier or the differential oracle and recorded as an [`Incident`];
//! - in degrade mode the faulted procedure falls back to basic-block
//!   scheduling and the final program still matches the original's
//!   observable behavior exactly;
//! - in strict mode the same fault surfaces as a hard `Err`.
//!
//! Fault effectiveness and catchability line up because the injector only
//! commits corruptions that fail `verify_program` or observably diverge on
//! the same oracle inputs and step budget the guard uses.

use pps::compact::CompactConfig;
use pps::core::{
    guarded_form_and_compact, guarded_form_and_compact_hooked, FormConfig, GuardConfig, GuardMode,
    Scheme,
};
use pps::ir::interp::{ExecConfig, ExecResult, Interp};
use pps::ir::trace::TeeSink;
use pps::ir::verify::verify_program;
use pps::ir::{FaultInjector, Program};
use pps::profile::{EdgeProfile, EdgeProfiler, PathProfile, PathProfiler};
use pps::testgen::{gen_program, GenConfig};

const SEEDS: u64 = 200;
/// Testgen programs are dynamically bounded well below this (50k instrs).
const STEP_BUDGET: u64 = 200_000;
const INJECT_ATTEMPTS: u32 = 16;

fn schemes() -> [Scheme; 4] {
    [Scheme::P4, Scheme::M4, Scheme::P4E, Scheme::M16]
}

fn run(p: &Program) -> ExecResult {
    Interp::new(p, ExecConfig::default())
        .run(&[])
        .expect("generated programs never fault")
}

fn profile(p: &Program) -> (EdgeProfile, PathProfile) {
    let mut tee = TeeSink::new(EdgeProfiler::new(p), PathProfiler::new(p, 15));
    Interp::new(p, ExecConfig::default())
        .run_traced(&[], &mut tee)
        .expect("profiling run");
    (tee.a.finish(), tee.b.finish())
}

fn guard(mode: GuardMode) -> GuardConfig {
    GuardConfig {
        mode,
        oracle_inputs: vec![vec![]],
        step_budget: STEP_BUDGET,
        budget_factor: 8,
    }
}

/// The headline sweep: ≥200 generated programs, each transformed under the
/// guarded pipeline while a seeded injector corrupts the post-compaction IR
/// of every procedure it can. Every committed fault must be caught and
/// degraded away, and the surviving program must behave like the original.
#[test]
fn injected_faults_are_always_caught_and_degraded() {
    let oracle_inputs = vec![vec![]];
    let mut total_injected = 0usize;
    let mut strict_checked = 0usize;

    for seed in 0..SEEDS {
        let base = gen_program(seed, GenConfig::default());
        let scheme = schemes()[(seed % 4) as usize];
        let (edge, path) = profile(&base);
        let expected = run(&base);

        let mut program = base.clone();
        let mut injector = FaultInjector::new(seed ^ 0xBAD_5EED);
        let mut injected = Vec::new();
        let result = guarded_form_and_compact_hooked(
            &mut program,
            &edge,
            Some(&path),
            scheme,
            &FormConfig::default(),
            &CompactConfig::default(),
            &guard(GuardMode::Degrade),
            &mut |prog, pid| {
                if let Some(r) =
                    injector.inject_effective(prog, pid, &oracle_inputs, STEP_BUDGET, INJECT_ATTEMPTS)
                {
                    injected.push(r);
                }
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed} ({}): degrade mode must not fail: {e}", scheme.name()));

        // Every committed fault raised exactly one incident, with fallback.
        assert_eq!(
            result.report.incidents.len(),
            injected.len(),
            "seed {seed} ({}): faults {injected:?} vs incidents {:?}",
            scheme.name(),
            result.report.incidents
        );
        assert_eq!(result.report.degraded_procs, injected.len(), "seed {seed}");
        assert!(
            result.report.incidents.iter().all(|i| i.fallback),
            "seed {seed}: {:?}",
            result.report.incidents
        );
        total_injected += injected.len();

        // The recovered program is structurally valid, fully scheduled, and
        // behaves exactly like the original.
        verify_program(&program).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(result.compacted.procs.len(), program.procs.len(), "seed {seed}");
        let got = run(&program);
        assert_eq!(expected.output, got.output, "seed {seed} ({})", scheme.name());
        assert_eq!(expected.return_value, got.return_value, "seed {seed}");
        assert_eq!(expected.memory, got.memory, "seed {seed}");

        // Strict mode on the same seed turns the first fault into a hard
        // Err (spot-check a bounded number to keep the sweep fast).
        if !injected.is_empty() && strict_checked < 25 {
            strict_checked += 1;
            let mut strict_program = base.clone();
            let mut strict_injector = FaultInjector::new(seed ^ 0xBAD_5EED);
            let err = guarded_form_and_compact_hooked(
                &mut strict_program,
                &edge,
                Some(&path),
                scheme,
                &FormConfig::default(),
                &CompactConfig::default(),
                &guard(GuardMode::Strict),
                &mut |prog, pid| {
                    let _ = strict_injector.inject_effective(
                        prog,
                        pid,
                        &oracle_inputs,
                        STEP_BUDGET,
                        INJECT_ATTEMPTS,
                    );
                },
            );
            assert!(err.is_err(), "seed {seed}: strict mode must fail fast");
        }
    }

    // The sweep only proves something if the injector actually landed
    // faults; with 200 programs it lands many.
    assert!(
        total_injected >= 50,
        "only {total_injected} effective faults across {SEEDS} programs — injector too weak"
    );
    assert!(strict_checked > 0, "strict mode never exercised");
}

/// Clean-path property: without injected faults the guarded pipeline
/// reports clean, degrades nothing, and preserves behavior — the guard is
/// pure observation on healthy runs.
#[test]
fn clean_guarded_runs_report_clean_and_preserve_behavior() {
    for seed in 0..50u64 {
        let base = gen_program(seed, GenConfig::default());
        let scheme = schemes()[(seed % 4) as usize];
        let (edge, path) = profile(&base);
        let expected = run(&base);

        let mut program = base.clone();
        let result = guarded_form_and_compact(
            &mut program,
            &edge,
            Some(&path),
            scheme,
            &FormConfig::default(),
            &CompactConfig::default(),
            &guard(GuardMode::Strict),
        )
        .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", scheme.name()));

        assert!(result.report.clean(), "seed {seed}: {:?}", result.report);
        assert_eq!(result.report.total_procs, program.procs.len(), "seed {seed}");
        let got = run(&program);
        assert_eq!(expected.output, got.output, "seed {seed}");
        assert_eq!(expected.return_value, got.return_value, "seed {seed}");
        assert_eq!(expected.memory, got.memory, "seed {seed}");
    }
}

/// Engine parity (ISSUE: flat pre-decoded interpreter): the guard's
/// `run_bounded` differential oracle, rollback, and degrade behavior must
/// be *identical* whichever execution engine is active — the injector's
/// effectiveness probe, the oracle baselines, and the per-procedure oracle
/// re-runs all go through the engine-dispatched `Exec`. Each sweep runs
/// inside `catch_unwind`: the guard's recovery boundary must contain every
/// fault under the fast engine exactly as it does under the reference
/// engine, and never let a panic escape.
#[test]
fn guard_oracle_and_rollback_identical_across_engines() {
    use pps::ir::{with_engine, Engine};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Everything observable about one guarded degrade-mode sweep plus the
    /// strict-mode replay: incidents, degraded count, recovered program,
    /// and the strict error (if any).
    #[derive(Debug, PartialEq)]
    struct SweepOutcome {
        incidents: Vec<(String, &'static str, String, bool)>,
        degraded: usize,
        program: Program,
        output: Vec<i64>,
        strict_err: Option<String>,
    }

    fn sweep(seed: u64) -> SweepOutcome {
        let oracle_inputs = vec![vec![]];
        let base = gen_program(seed, GenConfig::default());
        let scheme = schemes()[(seed % 4) as usize];
        let (edge, path) = profile(&base);

        let mut program = base.clone();
        let mut injector = FaultInjector::new(seed ^ 0xBAD_5EED);
        let result = guarded_form_and_compact_hooked(
            &mut program,
            &edge,
            Some(&path),
            scheme,
            &FormConfig::default(),
            &CompactConfig::default(),
            &guard(GuardMode::Degrade),
            &mut |prog, pid| {
                let _ = injector.inject_effective(prog, pid, &oracle_inputs, STEP_BUDGET, INJECT_ATTEMPTS);
            },
        )
        .expect("degrade mode never fails");

        let mut strict_program = base.clone();
        let mut strict_injector = FaultInjector::new(seed ^ 0xBAD_5EED);
        let strict_err = guarded_form_and_compact_hooked(
            &mut strict_program,
            &edge,
            Some(&path),
            scheme,
            &FormConfig::default(),
            &CompactConfig::default(),
            &guard(GuardMode::Strict),
            &mut |prog, pid| {
                let _ = strict_injector.inject_effective(prog, pid, &oracle_inputs, STEP_BUDGET, INJECT_ATTEMPTS);
            },
        )
        .err()
        .map(|e| e.to_string());

        SweepOutcome {
            incidents: result
                .report
                .incidents
                .iter()
                .map(|i| (i.proc.clone(), i.pass.name(), i.error.to_string(), i.fallback))
                .collect(),
            degraded: result.report.degraded_procs,
            output: run(&program).output,
            program,
            strict_err,
        }
    }

    let mut with_incidents = 0usize;
    for seed in 0..40u64 {
        let reference = catch_unwind(AssertUnwindSafe(|| with_engine(Engine::Reference, || sweep(seed))))
            .unwrap_or_else(|_| panic!("seed {seed}: reference-engine sweep panicked"));
        let fast = catch_unwind(AssertUnwindSafe(|| with_engine(Engine::Fast, || sweep(seed))))
            .unwrap_or_else(|_| panic!("seed {seed}: fast-engine sweep panicked"));
        assert_eq!(fast, reference, "seed {seed}: guard behavior diverges across engines");
        if !fast.incidents.is_empty() {
            with_incidents += 1;
            assert!(fast.strict_err.is_some(), "seed {seed}: strict mode must fail when degrade degraded");
        }
    }
    assert!(with_incidents >= 10, "only {with_incidents}/40 sweeps saw incidents — parity check too weak");
}
