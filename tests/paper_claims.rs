//! End-to-end checks of the paper's qualitative claims on the benchmark
//! suite at test scale: who wins, and why. (The harness regenerates the
//! full tables at paper scale; these assertions guard the *shape*.)

use pps::core::Scheme;
use pps::harness::{run_scheme, RunConfig};
use pps::suite::{all_benchmarks, benchmark_by_name, Scale};

const SCALE: Scale = Scale(2);

#[test]
fn microbenchmarks_show_large_path_wins() {
    // "As expected, the microbenchmarks demonstrate greater reductions
    // than the SPEC benchmarks, since we constructed the microbenchmarks
    // to show the benefit of path-based formation."
    let config = RunConfig::paper();
    for name in ["alt", "ph", "corr"] {
        let b = benchmark_by_name(name, SCALE).unwrap();
        let m4 = run_scheme(&b, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&b, Scheme::P4, &config).unwrap();
        let ratio = p4.cycles as f64 / m4.cycles as f64;
        assert!(
            ratio < 0.90,
            "{name}: P4/M4 = {ratio:.3}, expected a large path-profile win"
        );
    }
}

#[test]
fn formation_always_beats_basic_block_scheduling() {
    let config = RunConfig::paper();
    for b in all_benchmarks(SCALE) {
        let bb = run_scheme(&b, Scheme::BasicBlock, &config).unwrap();
        let m4 = run_scheme(&b, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&b, Scheme::P4, &config).unwrap();
        assert!(m4.cycles < bb.cycles, "{}: M4 {} !< BB {}", b.name, m4.cycles, bb.cycles);
        assert!(p4.cycles < bb.cycles, "{}: P4 {} !< BB {}", b.name, p4.cycles, bb.cycles);
    }
}

#[test]
fn path_formation_beats_edge_formation_with_ideal_icache() {
    // Figure 4's headline: 2-16% reductions for the SPEC analogs. At test
    // scale, allow a small tolerance for the borderline benchmarks.
    let config = RunConfig::paper();
    let mut wins = 0;
    let mut total = 0;
    for b in all_benchmarks(SCALE) {
        let m4 = run_scheme(&b, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&b, Scheme::P4, &config).unwrap();
        total += 1;
        if p4.cycles <= m4.cycles {
            wins += 1;
        }
        let ratio = p4.cycles as f64 / m4.cycles as f64;
        assert!(
            ratio < 1.05,
            "{}: P4/M4 = {ratio:.3} — P4 must not lose badly",
            b.name
        );
    }
    assert!(
        wins * 10 >= total * 8,
        "P4 must win on at least 80% of benchmarks: {wins}/{total}"
    );
}

#[test]
fn superblocks_execute_further_under_paths() {
    // Figure 7: "paths lead to superblock formation where superblocks exit
    // later" — dynamically-weighted blocks executed per superblock is
    // higher under P4 than under M4.
    let config = RunConfig::paper();
    for b in all_benchmarks(SCALE) {
        let m4 = run_scheme(&b, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&b, Scheme::P4, &config).unwrap();
        assert!(
            p4.sb_stats.avg_blocks_executed() >= m4.sb_stats.avg_blocks_executed() * 0.95,
            "{}: P4 avg run {:.2} vs M4 {:.2}",
            b.name,
            p4.sb_stats.avg_blocks_executed(),
            m4.sb_stats.avg_blocks_executed()
        );
    }
}

#[test]
fn m16_expands_code_far_more_than_p4e() {
    // Figure 6/7 discussion: P4e reaches M16-like quality with a fraction
    // of the code growth on call/dispatch-heavy programs.
    let config = RunConfig::paper();
    for name in ["gcc", "go", "li"] {
        let b = benchmark_by_name(name, SCALE).unwrap();
        let m16 = run_scheme(&b, Scheme::M16, &config).unwrap();
        let p4e = run_scheme(&b, Scheme::P4E, &config).unwrap();
        assert!(
            p4e.static_instrs < m16.static_instrs,
            "{name}: P4e {} !< M16 {} static instructions",
            p4e.static_instrs,
            m16.static_instrs
        );
    }
}

#[test]
fn unrolling_alone_insufficient_for_call_dominated_programs() {
    // "The cycle counts for M4 and M16 under go and li demonstrate that
    // unrolling alone is insufficient when an application's performance is
    // dominated by low iteration count loops and/or frequent procedure
    // calls."
    let config = RunConfig::paper();
    for name in ["go", "li"] {
        let b = benchmark_by_name(name, SCALE).unwrap();
        let m4 = run_scheme(&b, Scheme::M4, &config).unwrap();
        let m16 = run_scheme(&b, Scheme::M16, &config).unwrap();
        let gain = m4.cycles as f64 / m16.cycles as f64;
        assert!(
            (0.98..=1.02).contains(&gain),
            "{name}: M16 should barely differ from M4, got M4/M16 = {gain:.3}"
        );
        // And the average superblock run barely moves (Figure 7).
        let d = (m16.sb_stats.avg_blocks_executed() - m4.sb_stats.avg_blocks_executed()).abs();
        assert!(d < 0.25, "{name}: avg run moved by {d:.2} blocks under M16");
    }
}

#[test]
fn gcc_code_expansion_raises_miss_rate_under_p4() {
    // §4: gcc/go miss rates grow noticeably under the path-based approach
    // (paper: 2.67% -> 3.92% for gcc). Direction check on the analog.
    let config = RunConfig::paper();
    let b = benchmark_by_name("gcc", SCALE).unwrap();
    let m4 = run_scheme(&b, Scheme::M4, &config).unwrap();
    let p4 = run_scheme(&b, Scheme::P4, &config).unwrap();
    let p4e = run_scheme(&b, Scheme::P4E, &config).unwrap();
    assert!(
        p4.miss_rate > m4.miss_rate,
        "gcc: P4 miss rate {:.4} should exceed M4 {:.4}",
        p4.miss_rate,
        m4.miss_rate
    );
    // And P4e pulls the expansion back (the paper's remedy).
    assert!(
        p4e.static_instrs < p4.static_instrs,
        "gcc: P4e must expand less than P4"
    );
}

#[test]
fn train_test_methodology_is_honest() {
    // Formation must be driven by the training input only; the measured
    // run uses different data. Guard that the two inputs really differ in
    // dynamic behavior for the SPEC analogs.
    use pps::ir::interp::{ExecConfig, Interp};
    for b in all_benchmarks(SCALE) {
        if matches!(b.name, "alt" | "ph" | "corr") {
            continue;
        }
        let interp = Interp::new(&b.program, ExecConfig::default());
        let train = interp.run(&b.train_args).unwrap();
        let test = interp.run(&b.test_args).unwrap();
        assert_ne!(train.output, test.output, "{}", b.name);
    }
}
