//! The repository's central correctness property: the full pipeline —
//! profiling, formation under any scheme, tail duplication, enlargement
//! with compensation chains, register renaming with off-trace stubs,
//! speculation marking — never changes a program's observable behavior.
//!
//! Random structured programs from [`pps::testgen`] are executed, profiled,
//! transformed, and executed again; outputs, return values and final memory
//! must match exactly.

use pps::compact::{compact_program, CompactConfig};
use pps::core::{form_program, FormConfig, Scheme};
use pps::ir::interp::{ExecConfig, ExecResult, Interp};
use pps::ir::trace::TeeSink;
use pps::ir::verify::verify_program;
use pps::ir::Program;
use pps::profile::{EdgeProfiler, PathProfiler};
use pps::testgen::{gen_program, GenConfig};
use proptest::prelude::*;

fn run(p: &Program) -> ExecResult {
    Interp::new(p, ExecConfig::default())
        .run(&[])
        .expect("generated programs never fault")
}

fn transform(program: &mut Program, scheme: Scheme, compact: &CompactConfig) {
    let mut tee = TeeSink::new(EdgeProfiler::new(program), PathProfiler::new(program, 15));
    Interp::new(program, ExecConfig::default())
        .run_traced(&[], &mut tee)
        .expect("profiling run");
    let formed = form_program(
        program,
        &tee.a.finish(),
        Some(&tee.b.finish()),
        scheme,
        &FormConfig::default(),
    )
    .unwrap();
    let _ = compact_program(program, &formed.partition, compact);
}

fn check_seed(seed: u64, scheme: Scheme, compact: &CompactConfig) {
    let mut program = gen_program(seed, GenConfig::default());
    let before = run(&program);
    transform(&mut program, scheme, compact);
    verify_program(&program)
        .unwrap_or_else(|e| panic!("seed {seed} {}: verifier: {e}", scheme.name()));
    let after = run(&program);
    assert_eq!(before.output, after.output, "seed {seed} {}", scheme.name());
    assert_eq!(
        before.return_value,
        after.return_value,
        "seed {seed} {}",
        scheme.name()
    );
    assert_eq!(before.memory, after.memory, "seed {seed} {}", scheme.name());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_preserves_semantics_p4(seed in 0u64..1_000_000) {
        check_seed(seed, Scheme::P4, &CompactConfig::default());
    }

    #[test]
    fn pipeline_preserves_semantics_m4(seed in 0u64..1_000_000) {
        check_seed(seed, Scheme::M4, &CompactConfig::default());
    }

    #[test]
    fn pipeline_preserves_semantics_p4e(seed in 0u64..1_000_000) {
        check_seed(seed, Scheme::P4E, &CompactConfig::default());
    }

    #[test]
    fn pipeline_preserves_semantics_m16(seed in 0u64..1_000_000) {
        check_seed(seed, Scheme::M16, &CompactConfig::default());
    }

    #[test]
    fn pipeline_preserves_semantics_without_renaming(seed in 0u64..1_000_000) {
        let cc = CompactConfig { renaming: false, move_renaming: false, ..Default::default() };
        check_seed(seed, Scheme::P4, &cc);
    }

    #[test]
    fn pipeline_preserves_semantics_without_speculation(seed in 0u64..1_000_000) {
        let cc = CompactConfig { speculate_loads: false, ..Default::default() };
        check_seed(seed, Scheme::P4, &cc);
    }

    #[test]
    fn pipeline_preserves_semantics_realistic_latency(seed in 0u64..1_000_000) {
        let cc = CompactConfig {
            machine: pps::machine::MachineConfig::realistic(),
            ..Default::default()
        };
        check_seed(seed, Scheme::P4, &cc);
    }
}

/// A fixed sweep of the first 150 seeds across all schemes, so plain
/// `cargo test` exercises a broad deterministic corpus even without
/// proptest's randomization.
#[test]
fn deterministic_seed_sweep_all_schemes() {
    for seed in 0..150 {
        for scheme in [Scheme::BasicBlock, Scheme::M4, Scheme::P4, Scheme::P4E] {
            check_seed(seed, scheme, &CompactConfig::default());
        }
    }
}
