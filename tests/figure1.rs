//! Paper Figure 1, executable: edge profiles only *bound* the frequency of
//! a trace; general path profiles give it exactly.
//!
//! The CFG is the figure's: side entrance X→B into trace A-B-C, side exit
//! B→Y. We drive it with two different behaviors that produce the *same*
//! edge profile but opposite trace-completion frequencies, and show the
//! path profile distinguishes them while the edge profile cannot.

use pps::ir::builder::ProgramBuilder;
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::{AluOp, BlockId, Operand, Program};
use pps::profile::{EdgeProfile, EdgeProfiler, PathProfile, PathProfiler};

/// Figure 1's shape, iterated: driver -> (A | X); A -> B directly; X -> B;
/// B -> (C | Y); C, Y -> latch -> driver.
///
/// `correlated` decides who takes the side exit Y:
/// - `true`:  A-entries always continue to C (f(ABC) = f(AB)); X-entries
///   take Y.
/// - `false`: A-entries always take Y (f(ABC) = 0); X-entries go to C.
fn figure1(correlated: bool, iters: i64) -> (Program, [BlockId; 5]) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.begin_proc("main", 0);
    let i = f.reg();
    let via_a = f.reg();
    let c = f.reg();
    let m = f.reg();
    f.mov(i, 0i64);
    let driver = f.new_block();
    let a = f.new_block();
    let x = f.new_block();
    let b = f.new_block();
    let y = f.new_block();
    let cc = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.jump(driver);
    f.switch_to(driver);
    // Half the iterations enter via A, half via X.
    f.alu(AluOp::Rem, m, i, 2i64);
    f.alu(AluOp::CmpEq, c, m, 0i64);
    f.branch(c, a, x);
    f.switch_to(a);
    f.mov(via_a, 1i64);
    f.jump(b);
    f.switch_to(x);
    f.mov(via_a, 0i64);
    f.jump(b);
    f.switch_to(b);
    if correlated {
        // A-entries complete (go to C); X-entries exit via Y.
        f.alu(AluOp::CmpEq, c, via_a, 1i64);
    } else {
        // A-entries exit via Y; X-entries complete.
        f.alu(AluOp::CmpEq, c, via_a, 0i64);
    }
    f.branch(c, cc, y);
    f.switch_to(y);
    f.jump(latch);
    f.switch_to(cc);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(iters));
    f.branch(c, driver, exit);
    f.switch_to(exit);
    f.ret(None);
    let main = f.finish();
    (pb.finish(main), [a, x, b, y, cc])
}

fn profiles(p: &Program) -> (EdgeProfile, PathProfile) {
    let interp = Interp::new(p, ExecConfig::default());
    let mut ep = EdgeProfiler::new(p);
    interp.run_traced(&[], &mut ep).unwrap();
    let mut pp = PathProfiler::new(p, 15);
    interp.run_traced(&[], &mut pp).unwrap();
    (ep.finish(), pp.finish())
}

#[test]
fn edge_profiles_identical_but_completion_opposite() {
    let n = 1000;
    let (p1, [a1, x1, b1, y1, c1]) = figure1(true, n);
    let (p2, [a2, x2, b2, y2, c2]) = figure1(false, n);
    let (e1, pp1) = profiles(&p1);
    let (e2, pp2) = profiles(&p2);
    let pid1 = p1.entry;
    let pid2 = p2.entry;

    // Identical edge profiles on the Figure 1 edges (the paper's 500/1000
    // numbers, here 500 each out of 1000 iterations).
    assert_eq!(e1.edge_freq(pid1, a1, b1), e2.edge_freq(pid2, a2, b2));
    assert_eq!(e1.edge_freq(pid1, x1, b1), e2.edge_freq(pid2, x2, b2));
    assert_eq!(e1.edge_freq(pid1, b1, y1), e2.edge_freq(pid2, b2, y2));
    assert_eq!(e1.edge_freq(pid1, b1, c1), e2.edge_freq(pid2, b2, c2));
    assert_eq!(e1.edge_freq(pid1, b1, y1), n as u64 / 2);

    // The path profile separates them exactly: f(ABC) is everything in one
    // behavior, zero in the other.
    assert_eq!(pp1.freq(pid1, &[a1, b1, c1]), n as u64 / 2, "ABC certain");
    assert_eq!(pp1.freq(pid1, &[a1, b1, y1]), 0);
    assert_eq!(pp2.freq(pid2, &[a2, b2, c2]), 0, "ABC never completes");
    assert_eq!(pp2.freq(pid2, &[a2, b2, y2]), n as u64 / 2);

    // The paper's identity: f(ABC) + f(ABY) = f(AB).
    for (pp, pid, [a, _x, b, y, c]) in [(&pp1, pid1, [a1, x1, b1, y1, c1]), (&pp2, pid2, [a2, x2, b2, y2, c2])] {
        assert_eq!(
            pp.freq(pid, &[a, b, c]) + pp.freq(pid, &[a, b, y]),
            pp.freq(pid, &[a, b])
        );
    }
}

#[test]
fn point_statistics_derive_from_path_profile() {
    let (p, [a, x, b, y, c]) = figure1(true, 500);
    let (edge, path) = profiles(&p);
    let pid = p.entry;
    // "One can derive any desired point statistic" (paper §2.2): block and
    // edge frequencies from the path table equal the edge profiler's.
    for blk in [a, x, b, y, c] {
        assert_eq!(path.block_freq(pid, blk), edge.block_freq(pid, blk), "{blk}");
    }
    for (s, t) in [(a, b), (x, b), (b, y), (b, c)] {
        assert_eq!(path.edge_freq(pid, s, t), edge.edge_freq(pid, s, t), "{s}->{t}");
    }
}
