//! End-to-end tests of the live-telemetry stack: a real daemon with the
//! scrape listener, access log, and tail sampler attached, driven by the
//! real loadgen — scraped *while under load* — plus the two invariants
//! that make telemetry safe to leave on: reply bytes are identical with
//! it enabled, and every reply produces exactly one access-log line.

use pps::harness::loadgen::{self, LoadgenConfig};
use pps::harness::top::{self, TopConfig};
use pps::obs::expo;
use pps::obs::{json, Level, Obs, ObsConfig};
use pps::serve::proto::{encode_response, Envelope, Request, Response, PROTO_MINOR};
use pps::serve::server::{ServeConfig, ServerHandle};
use pps::serve::service::PipelineHandler;
use pps::serve::telemetry::{Telemetry, TelemetryConfig};
use pps::serve::Client;
use std::sync::Arc;
use std::time::Duration;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pps-telemetry-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn spawn_daemon_with_telemetry(access_log: &str) -> (ServerHandle, Arc<Telemetry>, String) {
    let tconfig = TelemetryConfig {
        access_log: Some(access_log.to_string()),
        ..TelemetryConfig::default()
    };
    let telemetry =
        Arc::new(Telemetry::new(Some("127.0.0.1:0"), tconfig).expect("telemetry bind"));
    let scrape = telemetry.http_addr().expect("scrape addr").to_string();
    let obs = Obs::recording(ObsConfig { level: Level::Off, trace: false, metrics: true });
    let config = ServeConfig { poll: Duration::from_millis(5), ..ServeConfig::default() };
    let server = ServerHandle::spawn_with_telemetry(
        "127.0.0.1:0",
        config,
        Arc::new(PipelineHandler),
        obs,
        Arc::clone(&telemetry),
    )
    .expect("bind");
    (server, telemetry, scrape)
}

#[test]
fn scrape_under_load_validates_and_access_log_matches_replies() {
    let log_path = temp_path("access-load.jsonl");
    let (server, telemetry, scrape) = spawn_daemon_with_telemetry(&log_path.to_string_lossy());
    let config = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 8,
        requests: 12,
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        probe_malformed: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };

    let (report, polls, max_latency_count) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| loadgen::run(&config, &Obs::noop()).expect("loadgen ran"));
        // Scrape concurrently with the load, validating every exposition.
        let mut polls = 0u64;
        let mut max_latency_count = 0.0f64;
        while !handle.is_finished() {
            let text = match top::http_get(&scrape, "/metrics", Duration::from_secs(5)) {
                Ok(t) => t,
                // The in-band Shutdown at the end of the run races the
                // scrape; a refused connection there is not a failure.
                Err(_) => break,
            };
            let doc = expo::parse(&text).expect("exposition parses");
            expo::validate(&doc).expect("exposition validates");
            max_latency_count = max_latency_count.max(doc.total("serve_latency_ms_count"));
            polls += 1;
            std::thread::sleep(Duration::from_millis(25));
        }
        (handle.join().expect("loadgen thread"), polls, max_latency_count)
    });

    assert!(report.clean(), "loadgen failures: {:?}", report.failures);
    assert_eq!(report.ok, 12);
    assert!(polls > 0, "never managed to scrape during the load phase");
    assert!(
        max_latency_count > 0.0,
        "serve_latency_ms must accumulate samples while loadgen drives"
    );

    let stats = server.join().expect("drained after in-band Shutdown");
    telemetry.flush();
    let text = std::fs::read_to_string(&log_path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len() as u64,
        stats.requests,
        "one access-log line per reply (got {} lines, {} replies)",
        lines.len(),
        stats.requests
    );
    for line in &lines {
        let doc = json::parse(line).expect("access-log line is JSON");
        for field in
            ["ts_ms", "trace_id", "type", "outcome", "retcode", "queue_wait_ms", "bytes"]
        {
            assert!(doc.get(field).is_some(), "missing {field}: {line}");
        }
    }
    // The malformed-frame probes show up as error outcomes and are
    // tail-sampled unconditionally.
    assert!(telemetry.access_log_lines() >= 12);
    assert!(telemetry.traces_sampled() > 0, "probe errors must be tail-sampled");
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn replies_are_byte_identical_with_telemetry_on_and_pong_carries_minor() {
    let log_path = temp_path("access-ident.jsonl");
    let (server, telemetry, scrape) = spawn_daemon_with_telemetry(&log_path.to_string_lossy());
    let addr = server.addr().to_string();

    let requests = [
        Request::Profile { bench: "wc".into(), scale: 1, depth: 0 },
        Request::Compile { bench: "wc".into(), scale: 1, scheme: "P4".into(), profile: None },
        Request::RunCell { bench: "wc".into(), scale: 1, scheme: "M4".into(), strict: false },
        // An unknown bench: the error reply must match too, and the error
        // outcome must land in the tail sampler.
        Request::Compile { bench: "nope".into(), scale: 1, scheme: "P4".into(), profile: None },
    ];
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| encode_response(&pps::serve::execute(r, &Obs::noop())))
        .collect();

    let mut client = Client::connect(&addr, Some(Duration::from_secs(120))).expect("connect");
    for (i, request) in requests.iter().enumerate() {
        let mut resp = client.call(&Envelope::new(request.clone())).expect("request");
        let mut tries = 0;
        while matches!(resp, Response::Busy) {
            tries += 1;
            assert!(tries < 100, "persistent Busy");
            std::thread::sleep(Duration::from_millis(10));
            resp = client.call(&Envelope::new(request.clone())).expect("retry");
        }
        assert_eq!(
            encode_response(&resp),
            expected[i],
            "request {i}: reply with telemetry on differs from the in-process pipeline"
        );
    }

    // The health snapshot advertises the current protocol minor and the
    // telemetry counters through the same socket the work flows over.
    let Response::Pong { health } = client.request(Request::Ping).expect("ping") else {
        panic!("expected Pong");
    };
    assert_eq!(health.proto_minor, PROTO_MINOR);
    assert!(health.telemetry_enabled);
    assert!(health.access_log_lines >= 4, "{health:?}");
    assert!(health.traces_sampled >= 1, "error reply must be tail-sampled");

    // /health agrees with the Pong, /trace carries the sampled span tree.
    let health_doc = json::parse(
        &top::http_get(&scrape, "/health", Duration::from_secs(5)).expect("GET /health"),
    )
    .expect("health JSON");
    assert_eq!(
        health_doc.get("proto_minor").and_then(json::Json::as_num),
        Some(f64::from(PROTO_MINOR))
    );
    assert_eq!(
        health_doc.get("telemetry").and_then(|t| t.get("enabled")),
        Some(&json::Json::Bool(true))
    );
    let traces = json::parse(
        &top::http_get(&scrape, "/trace", Duration::from_secs(5)).expect("GET /trace"),
    )
    .expect("traces JSON");
    let sampled = traces.get("traces").and_then(json::Json::as_arr).expect("traces array");
    assert!(!sampled.is_empty(), "the unknown-bench error must be retained");
    assert!(sampled
        .iter()
        .any(|t| t.get("reason").and_then(json::Json::as_str) == Some("error")));

    // `pps-harness top --watch-json` over the live daemon: every line is
    // machine-readable and the poll validates the exposition en route.
    let mut out = Vec::new();
    let top_config = TopConfig {
        addr: scrape.clone(),
        interval: Duration::from_millis(50),
        iterations: Some(2),
        json: true,
    };
    top::run(&top_config, &mut out).expect("top --watch-json");
    let out = String::from_utf8(out).expect("utf8");
    let json_lines: Vec<&str> = out.lines().collect();
    assert_eq!(json_lines.len(), 2);
    for line in json_lines {
        let doc = json::parse(line).expect("pps-top line parses");
        assert_eq!(doc.get("schema").and_then(json::Json::as_str), Some("pps-top"));
        assert!(doc.get("window").is_some());
    }

    server.shutdown();
    let stats = server.join().expect("clean drain");
    telemetry.flush();
    let text = std::fs::read_to_string(&log_path).expect("access log exists");
    assert_eq!(text.lines().count() as u64, stats.requests);
    // The error line carries the structured retcode (10 + kind).
    assert!(
        text.lines().any(|l| l.contains("\"outcome\":\"unknown-bench\"")),
        "unknown-bench outcome missing from access log"
    );
    std::fs::remove_file(&log_path).ok();
}
