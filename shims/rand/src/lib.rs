#![warn(missing_docs)]

//! Offline drop-in shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace maps
//! the `rand` dependency to this local crate (see `[workspace.dependencies]`
//! in the root manifest). It provides deterministic, seedable generators
//! with the same call-site surface (`Rng::gen_range`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`) but makes **no** promise of
//! producing the same streams as the real `rand` crate. Everything in this
//! repository that consumes randomness (test-program generation, synthetic
//! benchmark data) only relies on determinism per seed, never on specific
//! values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a double in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample a `T` from.
///
/// Parameterizing over the output type (rather than using an associated
/// type) matches the real crate's inference behaviour: in
/// `let x: i64 = rng.gen_range(0..100);` the literal range unifies with
/// `Range<i64>` via the `T = i64` obligation.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw from `[0, span)` via 128-bit multiply-shift.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // `span == 0` means the full 64-bit domain; take any word.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Expands a 64-bit seed into a key stream (`splitmix64`), the conventional
/// seeding recipe for small-state generators.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ (small, fast, and far
    /// more than adequate for test-data generation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden point; splitmix64 cannot
            // produce it from four consecutive outputs, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_vals: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(-64i64..64);
            assert!((-64..64).contains(&v));
            let u = r.gen_range(b'a'..=b'z');
            assert!((b'a'..=b'z').contains(&u));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let w = r.gen_range(3usize..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
