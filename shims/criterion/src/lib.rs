#![warn(missing_docs)]

//! Offline drop-in shim for the subset of the `criterion` 0.5 API used by
//! this workspace's benches: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark for a
//! fixed number of timed iterations and prints the mean wall-clock time per
//! iteration (plus throughput when configured). That keeps `cargo bench`
//! usable for coarse before/after comparisons without any network access;
//! for publishable numbers, swap the workspace dependency back to the real
//! crate.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs, for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
        };
        f(&mut bencher);
        let mean_ns = bencher.elapsed_ns as f64 / bencher.iters.max(1) as f64;
        let mut line = format!(
            "{}/{id}: {} over {} iters",
            self.name,
            format_ns(mean_ns),
            bencher.iters,
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if mean_ns > 0.0 {
                let rate = count as f64 / (mean_ns / 1e9);
                line.push_str(&format!("  ({rate:.3e} {unit}/s)"));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group. Reporting happens per-benchmark, so this is a no-op
    /// kept for call-site compatibility.
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn group_runs_benchmarks() {
        benches();
    }

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher { iters: 3, elapsed_ns: 0 };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }
}
