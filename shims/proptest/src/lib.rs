#![warn(missing_docs)]

//! Offline drop-in shim for the subset of the `proptest` 1.x API used by
//! this workspace: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, integer-range strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//! - case generation is **deterministic**: the RNG is seeded from the test
//!   name, so failures reproduce without a persistence file;
//! - there is no shrinking — the failing input values are reported in the
//!   panic message instead (every property test in this repository takes
//!   small integer seeds, which are self-describing);
//! - only the strategies this workspace uses are implemented (integer
//!   `Range` / `RangeInclusive`).

/// Run configuration for a [`proptest!`] block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Deterministic case-generation machinery.
pub mod test_runner {
    pub use super::ProptestConfig as Config;

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for the named test, deterministically.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-spread seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of values for one property parameter.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    fn below(rng: &mut TestRng, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span) as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// inside the block becomes a `#[test]` that runs `body` for
/// `config.cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    // Report the generated inputs on failure (no shrinking).
                    let __inputs: &[(&str, String)] =
                        &[$((stringify!($arg), format!("{:?}", $arg))),*];
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest case {}/{} failed with inputs: {}",
                            __case + 1,
                            __config.cases,
                            __inputs
                                .iter()
                                .map(|(n, v)| format!("{n} = {v}"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The conventional glob import target.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i64..=5) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 1usize..4) {
            prop_assert_ne!(v, 0);
            prop_assert_eq!(v, v);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        let va: Vec<u64> = (0..32).map(|_| (0u64..1000).sample(&mut a)).collect();
        let vb: Vec<u64> = (0..32).map(|_| (0u64..1000).sample(&mut b)).collect();
        assert_eq!(va, vb);
        let mut c = TestRng::for_test("u");
        let vc: Vec<u64> = (0..32).map(|_| (0u64..1000).sample(&mut c)).collect();
        assert_ne!(va, vc);
    }
}
